//! The cluster-wide `IterationReport`: one record per training iteration,
//! identical schema for SYMI and every baseline so system comparisons are
//! apples-to-apples. Serializes to single-line JSON for JSONL sinks and
//! parses back (round-trip tested).

use crate::json::{Obj, Value};
use crate::phase::{LinkClass, Phase, LINK_CLASSES, NUM_LINK_CLASSES, NUM_PHASES, PHASES};

/// Per-iteration observability record merged across all ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationReport {
    /// System under test ("symi", "deepspeed", "flexmoe-100", ...).
    pub system: String,
    pub iteration: u64,
    /// Mean cross-entropy loss for the iteration.
    pub loss: f64,
    /// Global token count routed to each expert class this iteration.
    pub popularity: Vec<u64>,
    /// Token assignments per class that survived capacity limits.
    pub kept_per_class: Vec<u64>,
    /// Replica count per expert class under the active placement.
    pub replicas: Vec<u64>,
    /// Slots whose assigned expert changed when the placement was updated.
    pub placement_churn: u64,
    /// Nanoseconds spent per phase, per rank: `phase_ns[rank][phase]`.
    pub phase_ns: Vec<[u64; NUM_PHASES]>,
    /// Bytes moved per phase per link class: `phase_bytes[phase][class]`.
    pub phase_bytes: [[u64; NUM_LINK_CLASSES]; NUM_PHASES],
}

impl IterationReport {
    pub fn new(system: &str, iteration: u64) -> Self {
        Self {
            system: system.to_string(),
            iteration,
            loss: 0.0,
            popularity: Vec::new(),
            kept_per_class: Vec::new(),
            replicas: Vec::new(),
            placement_churn: 0,
            phase_ns: Vec::new(),
            phase_bytes: [[0; NUM_LINK_CLASSES]; NUM_PHASES],
        }
    }

    /// Shannon entropy (nats) of the popularity distribution. Uniform
    /// routing maximizes this at ln(num_classes); collapse drives it to 0.
    pub fn popularity_entropy(&self) -> f64 {
        let total: u64 = self.popularity.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &self.popularity {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.ln();
            }
        }
        h
    }

    /// Fraction of this class's assignments dropped by capacity limits.
    pub fn drop_rate_per_class(&self) -> Vec<f64> {
        self.popularity
            .iter()
            .zip(self.kept_per_class.iter().chain(std::iter::repeat(&0)))
            .map(|(&assigned, &kept)| {
                if assigned == 0 {
                    0.0
                } else {
                    (assigned.saturating_sub(kept)) as f64 / assigned as f64
                }
            })
            .collect()
    }

    /// Aggregate drop rate across all classes.
    pub fn total_drop_rate(&self) -> f64 {
        let assigned: u64 = self.popularity.iter().sum();
        let kept: u64 = self.kept_per_class.iter().sum();
        if assigned == 0 {
            0.0
        } else {
            assigned.saturating_sub(kept) as f64 / assigned as f64
        }
    }

    /// Total ns one rank spent across all phases.
    pub fn rank_total_ns(&self, rank: usize) -> u64 {
        self.phase_ns.get(rank).map(|p| p.iter().sum()).unwrap_or(0)
    }

    /// Straggler spread: max − min of per-rank total phase time.
    pub fn straggler_spread_ns(&self) -> u64 {
        let totals: Vec<u64> = (0..self.phase_ns.len()).map(|r| self.rank_total_ns(r)).collect();
        match (totals.iter().max(), totals.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Critical-path time of a phase: max across ranks.
    pub fn phase_ns_max(&self, phase: Phase) -> u64 {
        self.phase_ns.iter().map(|p| p[phase.index()]).max().unwrap_or(0)
    }

    /// Mean across ranks of a phase's time.
    pub fn phase_ns_mean(&self, phase: Phase) -> f64 {
        if self.phase_ns.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.phase_ns.iter().map(|p| p[phase.index()]).sum();
        sum as f64 / self.phase_ns.len() as f64
    }

    /// Iteration wall time proxy: the slowest rank's total.
    pub fn iteration_ns(&self) -> u64 {
        (0..self.phase_ns.len()).map(|r| self.rank_total_ns(r)).max().unwrap_or(0)
    }

    /// Share of iteration time per phase (critical-path convention), in
    /// phase index order. Sums to ~1 when spans are disjoint.
    pub fn phase_shares(&self) -> [f64; NUM_PHASES] {
        let total: u64 = PHASES.iter().map(|&p| self.phase_ns_max(p)).sum();
        if total == 0 {
            return [0.0; NUM_PHASES];
        }
        std::array::from_fn(|i| self.phase_ns_max(PHASES[i]) as f64 / total as f64)
    }

    /// Total bytes for one link class summed over phases.
    pub fn bytes_for_class(&self, class: LinkClass) -> u64 {
        self.phase_bytes.iter().map(|row| row[class.index()]).sum()
    }

    /// Total bytes moved in one phase across all link classes.
    pub fn bytes_for_phase(&self, phase: Phase) -> u64 {
        self.phase_bytes[phase.index()].iter().sum()
    }

    pub fn to_json(&self) -> Value {
        let mut o = Obj::new();
        o.set("system", Value::str(&self.system));
        o.set("iteration", Value::u64(self.iteration));
        o.set("loss", Value::Num(self.loss));
        o.set("popularity", Value::arr_u64(&self.popularity));
        o.set("kept_per_class", Value::arr_u64(&self.kept_per_class));
        o.set("replicas", Value::arr_u64(&self.replicas));
        o.set("placement_churn", Value::u64(self.placement_churn));
        // Derived metrics are emitted too so downstream consumers (symi-top,
        // plotting) don't re-implement the formulas.
        o.set("popularity_entropy", Value::Num(self.popularity_entropy()));
        o.set("total_drop_rate", Value::Num(self.total_drop_rate()));
        o.set("straggler_spread_ns", Value::u64(self.straggler_spread_ns()));
        o.set("iteration_ns", Value::u64(self.iteration_ns()));

        let mut phases = Obj::new();
        for p in PHASES {
            let per_rank: Vec<u64> = self.phase_ns.iter().map(|r| r[p.index()]).collect();
            phases.set(p.name(), Value::arr_u64(&per_rank));
        }
        o.set("phase_ns", Value::Obj(phases));

        let mut bytes = Obj::new();
        for p in PHASES {
            if self.bytes_for_phase(p) == 0 {
                continue;
            }
            let mut row = Obj::new();
            for c in LINK_CLASSES {
                row.set(c.name(), Value::u64(self.phase_bytes[p.index()][c.index()]));
            }
            bytes.set(p.name(), Value::Obj(row));
        }
        o.set("phase_bytes", Value::Obj(bytes));
        Value::Obj(o)
    }

    /// One-line JSONL record.
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_string()
    }

    pub fn from_json(v: &Value) -> Result<Self, String> {
        let system = v.get("system").as_str().ok_or("missing system")?.to_string();
        let iteration = v.get("iteration").as_u64().ok_or("missing iteration")?;
        let mut r = IterationReport::new(&system, iteration);
        r.loss = v.get("loss").as_f64().unwrap_or(0.0);
        r.popularity = v.get("popularity").u64_vec();
        r.kept_per_class = v.get("kept_per_class").u64_vec();
        r.replicas = v.get("replicas").u64_vec();
        r.placement_churn = v.get("placement_churn").as_u64().unwrap_or(0);

        if let Some(phases) = v.get("phase_ns").as_obj() {
            let ranks = PHASES
                .iter()
                .filter_map(|p| phases.get(p.name()))
                .map(|col| col.u64_vec().len())
                .max()
                .unwrap_or(0);
            r.phase_ns = vec![[0; NUM_PHASES]; ranks];
            for p in PHASES {
                if let Some(col) = phases.get(p.name()) {
                    for (rank, ns) in col.u64_vec().into_iter().enumerate() {
                        r.phase_ns[rank][p.index()] = ns;
                    }
                }
            }
        }
        if let Some(bytes) = v.get("phase_bytes").as_obj() {
            for p in PHASES {
                if let Some(row) = bytes.get(p.name()) {
                    for c in LINK_CLASSES {
                        r.phase_bytes[p.index()][c.index()] =
                            row.get(c.name()).as_u64().unwrap_or(0);
                    }
                }
            }
        }
        Ok(r)
    }

    pub fn parse_jsonl(line: &str) -> Result<Self, String> {
        Self::from_json(&Value::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IterationReport {
        let mut r = IterationReport::new("symi", 7);
        r.loss = 3.25;
        r.popularity = vec![100, 50, 0, 50];
        r.kept_per_class = vec![90, 50, 0, 25];
        r.replicas = vec![2, 1, 1, 1];
        r.placement_churn = 3;
        r.phase_ns = vec![
            {
                let mut p = [0u64; NUM_PHASES];
                p[Phase::Routing.index()] = 1000;
                p[Phase::ExpertFfn.index()] = 5000;
                p
            },
            {
                let mut p = [0u64; NUM_PHASES];
                p[Phase::Routing.index()] = 1500;
                p[Phase::ExpertFfn.index()] = 4000;
                p
            },
        ];
        r.phase_bytes[Phase::Dispatch.index()][LinkClass::InterNode.index()] = 4096;
        r.phase_bytes[Phase::Dispatch.index()][LinkClass::IntraNode.index()] = 1024;
        r
    }

    #[test]
    fn jsonl_round_trip() {
        let r = sample();
        let line = r.to_jsonl();
        assert!(!line.contains('\n'));
        let back = IterationReport::parse_jsonl(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        // entropy of [100,50,0,50]/200
        let expect = -(0.5f64 * 0.5f64.ln() + 2.0 * 0.25 * 0.25f64.ln());
        assert!((r.popularity_entropy() - expect).abs() < 1e-12);
        let drops = r.drop_rate_per_class();
        assert!((drops[0] - 0.1).abs() < 1e-12);
        assert_eq!(drops[1], 0.0);
        assert_eq!(drops[2], 0.0);
        assert!((drops[3] - 0.5).abs() < 1e-12);
        assert!((r.total_drop_rate() - 35.0 / 200.0).abs() < 1e-12);
        // rank totals: 6000 vs 5500 -> spread 500
        assert_eq!(r.straggler_spread_ns(), 500);
        assert_eq!(r.iteration_ns(), 6000);
        assert_eq!(r.phase_ns_max(Phase::Routing), 1500);
        assert_eq!(r.bytes_for_phase(Phase::Dispatch), 5120);
        assert_eq!(r.bytes_for_class(LinkClass::InterNode), 4096);
        let shares = r.phase_shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
