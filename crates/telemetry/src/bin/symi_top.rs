//! symi-top: tail a telemetry JSONL stream and render a live terminal
//! dashboard of expert popularity, capacity drops, and the per-phase
//! latency breakdown.
//!
//! Usage:
//!   symi-top <run.jsonl>                follow the stream (like `top`)
//!   symi-top <run.jsonl> --once         render one frame and exit
//!   symi-top <run.jsonl> --interval-ms 500
//!   symi-top <run.jsonl> --window 32    iterations aggregated per frame

use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::PathBuf;
use std::time::Duration;

use symi_telemetry::{IterationReport, LinkClass, Phase, LINK_CLASSES, PHASES};

struct Options {
    path: PathBuf,
    once: bool,
    interval: Duration,
    window: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut once = false;
    let mut interval = Duration::from_millis(1000);
    let mut window = 16usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let v = args.next().ok_or("--interval-ms needs a value")?;
                interval = Duration::from_millis(v.parse().map_err(|_| "bad --interval-ms")?);
            }
            "--window" => {
                let v = args.next().ok_or("--window needs a value")?;
                window = v.parse().map_err(|_| "bad --window")?;
            }
            "--help" | "-h" => {
                return Err("usage: symi-top <run.jsonl> [--once] [--interval-ms N] [--window N]"
                    .to_string())
            }
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => return Err(format!("unexpected argument {:?}", other)),
        }
    }
    Ok(Options {
        path: path.ok_or("usage: symi-top <run.jsonl> [--once] [--interval-ms N] [--window N]")?,
        once,
        interval,
        window: window.max(1),
    })
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{} {}", b, UNITS[0])
    } else {
        format!("{:.1} {}", v, UNITS[u])
    }
}

fn human_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} us", v / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

fn render(reports: &[IterationReport], total_seen: usize, follow: bool) -> String {
    let mut out = String::new();
    if follow {
        // Clear screen + home cursor.
        out.push_str("\x1b[2J\x1b[H");
    }
    let Some(last) = reports.last() else {
        out.push_str("symi-top: waiting for reports...\n");
        return out;
    };

    out.push_str(&format!(
        "symi-top — system {} | iter {} | {} reports seen | window {}\n",
        last.system,
        last.iteration,
        total_seen,
        reports.len()
    ));
    out.push_str(&format!(
        "loss {:.4} | entropy {:.3} nats | drop {:.2}% | churn {} slots | straggler {}\n\n",
        last.loss,
        last.popularity_entropy(),
        last.total_drop_rate() * 100.0,
        last.placement_churn,
        human_ns(last.straggler_spread_ns()),
    ));

    // Phase breakdown: mean over window of critical-path ns.
    out.push_str("phase breakdown (window mean, critical path)\n");
    let mut phase_means = [0f64; PHASES.len()];
    for r in reports {
        for (i, &p) in PHASES.iter().enumerate() {
            phase_means[i] += r.phase_ns_max(p) as f64;
        }
    }
    for m in phase_means.iter_mut() {
        *m /= reports.len() as f64;
    }
    let total: f64 = phase_means.iter().sum::<f64>().max(1.0);
    for (i, &p) in PHASES.iter().enumerate() {
        if phase_means[i] <= 0.0 {
            continue;
        }
        let frac = phase_means[i] / total;
        out.push_str(&format!(
            "  {:<22} {} {:5.1}%  {}\n",
            p.name(),
            bar(frac, 30),
            frac * 100.0,
            human_ns(phase_means[i] as u64),
        ));
    }

    // Traffic by link class (window total).
    let mut class_totals = [0u64; LINK_CLASSES.len()];
    for r in reports {
        for (i, &c) in LINK_CLASSES.iter().enumerate() {
            class_totals[i] += r.bytes_for_class(c);
        }
    }
    if class_totals.iter().any(|&b| b > 0) {
        out.push_str("\ntraffic by link class (window total)\n");
        for (i, &c) in LINK_CLASSES.iter().enumerate() {
            out.push_str(&format!("  {:<12} {}\n", c.name(), human_bytes(class_totals[i])));
        }
        let inter = class_totals[LinkClass::InterNode.index()];
        let dispatch: u64 = reports.iter().map(|r| r.bytes_for_phase(Phase::Dispatch)).sum();
        let weight: u64 = reports.iter().map(|r| r.bytes_for_phase(Phase::WeightComm)).sum();
        out.push_str(&format!(
            "  dispatch {} | weight-comm {} | inter-node share {:.1}%\n",
            human_bytes(dispatch),
            human_bytes(weight),
            100.0 * inter as f64 / class_totals.iter().sum::<u64>().max(1) as f64,
        ));
    }

    // Expert popularity + drops, most popular first.
    let drops = last.drop_rate_per_class();
    let max_pop = last.popularity.iter().copied().max().unwrap_or(0).max(1);
    let mut order: Vec<usize> = (0..last.popularity.len()).collect();
    order.sort_by_key(|&e| std::cmp::Reverse(last.popularity[e]));
    out.push_str("\nexpert popularity (latest iter, top 12)\n");
    for &e in order.iter().take(12) {
        let pop = last.popularity[e];
        let drop = drops.get(e).copied().unwrap_or(0.0);
        let replicas = last.replicas.get(e).copied().unwrap_or(0);
        out.push_str(&format!(
            "  e{:<3} {} {:>8} tok | x{} replica{} | drop {:5.2}%\n",
            e,
            bar(pop as f64 / max_pop as f64, 24),
            pop,
            replicas,
            if replicas == 1 { " " } else { "s" },
            drop * 100.0,
        ));
    }
    out
}

fn read_new_lines(reader: &mut BufReader<File>, sink: &mut Vec<IterationReport>) -> usize {
    let mut added = 0;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if let Ok(report) = IterationReport::parse_jsonl(trimmed) {
                    sink.push(report);
                    added += 1;
                }
            }
        }
    }
    added
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{}", msg);
            std::process::exit(2);
        }
    };

    let file = match File::open(&opts.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("symi-top: cannot open {}: {}", opts.path.display(), e);
            std::process::exit(1);
        }
    };
    let mut reader = BufReader::new(file);
    let mut reports: Vec<IterationReport> = Vec::new();
    let mut total_seen = 0usize;

    loop {
        total_seen += read_new_lines(&mut reader, &mut reports);
        if reports.len() > opts.window {
            let excess = reports.len() - opts.window;
            reports.drain(0..excess);
        }
        print!("{}", render(&reports, total_seen, !opts.once));
        if opts.once {
            break;
        }
        std::thread::sleep(opts.interval);
        // Re-seek in case the file was truncated and rewritten.
        if let Ok(meta) = std::fs::metadata(&opts.path) {
            if let Ok(pos) = reader.stream_position() {
                if meta.len() < pos {
                    let _ = reader.seek(SeekFrom::Start(0));
                    reports.clear();
                    total_seen = 0;
                }
            }
        }
    }
}
