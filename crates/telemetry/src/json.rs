//! Minimal JSON value model, parser, and writer.
//!
//! The workspace builds in fully offline environments, so instead of pulling
//! in `serde_json` the telemetry crate carries the small subset of JSON it
//! needs: objects, arrays, strings, f64 numbers, booleans, and null. Object
//! key order is preserved on write (insertion order) so JSONL streams are
//! stable and diffable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object: sorted map for deterministic lookup plus a parallel key order
    /// vector so serialization preserves insertion order.
    Obj(Obj),
}

/// A JSON object preserving insertion order of keys.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Obj {
    map: BTreeMap<String, Value>,
    order: Vec<String>,
}

impl Obj {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, key: &str, value: Value) {
        if !self.map.contains_key(key) {
            self.order.push(key.to_string());
        }
        self.map.insert(key.to_string(), value);
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.order.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Value {
    pub fn obj() -> Obj {
        Obj::new()
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    /// Lossless for integers up to 2^53 — all values this workspace emits.
    pub fn u64(n: u64) -> Value {
        Value::Num(n as f64)
    }

    pub fn arr_u64(v: &[u64]) -> Value {
        Value::Arr(v.iter().map(|&x| Value::u64(x)).collect())
    }

    pub fn arr_f64(v: &[f64]) -> Value {
        Value::Arr(v.iter().map(|&x| Value::Num(x)).collect())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f as u64)
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().map(|f| f as usize)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&Obj> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Convenience: `obj["key"]` traversal returning Null on miss.
    pub fn get(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.as_obj().and_then(|o| o.get(key)).unwrap_or(&NULL)
    }

    pub fn u64_vec(&self) -> Vec<u64> {
        self.as_arr().map(|a| a.iter().filter_map(Value::as_u64).collect()).unwrap_or_default()
    }

    pub fn f64_vec(&self) -> Vec<f64> {
        self.as_arr().map(|a| a.iter().filter_map(Value::as_f64).collect()).unwrap_or_default()
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(o) => {
                out.push('{');
                for (i, k) in o.keys().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    o.get(k).expect("ordered key present").write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns an error message on malformed input.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Compact single-line JSON (JSONL friendly); `value.to_string()` comes via
/// the blanket `ToString`.
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null so the stream stays parseable.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{}", n);
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        s.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {:?}: {}", s, e))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut obj = Obj::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            obj.set(&key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut inner = Obj::new();
        inner.set("b", Value::arr_u64(&[1, 2, 3]));
        inner.set("a", Value::Num(1.5));
        let mut root = Obj::new();
        root.set("name", Value::str("symi"));
        root.set("flag", Value::Bool(true));
        root.set("none", Value::Null);
        root.set("inner", Value::Obj(inner));
        let v = Value::Obj(root);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn preserves_key_insertion_order() {
        let mut o = Obj::new();
        o.set("zeta", Value::u64(1));
        o.set("alpha", Value::u64(2));
        assert_eq!(Value::Obj(o).to_string(), r#"{"zeta":1,"alpha":2}"#);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Value::parse(r#"{"s":"a\n\"bA","n":-1.25e2}"#).unwrap();
        assert_eq!(v.get("s").as_str(), Some("a\n\"bA"));
        assert_eq!(v.get("n").as_f64(), Some(-125.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
    }
}
