//! Cluster-level wiring: one `ClusterTelemetry` shared by all ranks, one
//! cheap `TelemetryHandle` per rank thread.
//!
//! The engines assemble an [`IterationReport`] at the end of each iteration
//! by draining the per-rank phase accumulators (and, in the distributed
//! engines, the traffic counters) and hand it to `emit`, which fans out to
//! every registered sink.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, MetricRegistry};
use crate::phase::{Phase, PhaseAccumulator, ScopedTimer, NUM_PHASES};
use crate::report::IterationReport;
use crate::sink::Sink;

/// Shared telemetry state for one training cluster (or one single-process
/// trainer, which is just the 1-rank case).
pub struct ClusterTelemetry {
    registry: Arc<MetricRegistry>,
    ranks: Vec<Arc<PhaseAccumulator>>,
    sinks: Mutex<Vec<Arc<dyn Sink>>>,
    enabled: bool,
    iterations_emitted: AtomicU64,
}

impl ClusterTelemetry {
    pub fn new(num_ranks: usize) -> Arc<Self> {
        Self::build(num_ranks, true)
    }

    /// Telemetry-off twin: spans become thread-local markers with no timing
    /// sink and `emit` is a no-op. Lets call sites keep one code path.
    pub fn disabled(num_ranks: usize) -> Arc<Self> {
        Self::build(num_ranks, false)
    }

    fn build(num_ranks: usize, enabled: bool) -> Arc<Self> {
        Arc::new(Self {
            registry: MetricRegistry::new(),
            ranks: (0..num_ranks.max(1)).map(|_| Arc::new(PhaseAccumulator::new())).collect(),
            sinks: Mutex::new(Vec::new()),
            enabled,
            iterations_emitted: AtomicU64::new(0),
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn registry(&self) -> &Arc<MetricRegistry> {
        &self.registry
    }

    pub fn add_sink(&self, sink: Arc<dyn Sink>) {
        self.sinks.lock().expect("sinks poisoned").push(sink);
    }

    /// Per-rank handle; cheap to clone into the rank's thread.
    pub fn handle(self: &Arc<Self>, rank: usize) -> TelemetryHandle {
        TelemetryHandle {
            rank,
            enabled: self.enabled,
            acc: self.ranks[rank.min(self.ranks.len() - 1)].clone(),
            registry: self.registry.clone(),
        }
    }

    /// Drain every rank's per-phase ns, resetting the accumulators for the
    /// next iteration.
    pub fn drain_phase_ns(&self) -> Vec<[u64; NUM_PHASES]> {
        self.ranks.iter().map(|acc| acc.drain()).collect()
    }

    /// Fan a finished report out to all sinks (no-op when disabled).
    pub fn emit(&self, report: &IterationReport) {
        if !self.enabled {
            return;
        }
        self.iterations_emitted.fetch_add(1, Ordering::Relaxed);
        for sink in self.sinks.lock().expect("sinks poisoned").iter() {
            sink.emit(report);
        }
    }

    pub fn iterations_emitted(&self) -> u64 {
        self.iterations_emitted.load(Ordering::Relaxed)
    }

    pub fn flush(&self) {
        for sink in self.sinks.lock().expect("sinks poisoned").iter() {
            sink.flush();
        }
    }
}

/// One rank's entry point into the telemetry subsystem. Owns pre-resolved
/// `Arc`s so hot-path calls never touch the registry mutex.
#[derive(Clone)]
pub struct TelemetryHandle {
    rank: usize,
    enabled: bool,
    acc: Arc<PhaseAccumulator>,
    registry: Arc<MetricRegistry>,
}

impl TelemetryHandle {
    /// Standalone no-op handle for call sites constructed without telemetry.
    pub fn disabled() -> Self {
        TelemetryHandle {
            rank: 0,
            enabled: false,
            acc: Arc::new(PhaseAccumulator::new()),
            registry: MetricRegistry::new(),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a phase span. Always sets the thread-local phase (so byte
    /// attribution works); records timing only when telemetry is enabled.
    pub fn span(&self, phase: Phase) -> ScopedTimer<'_> {
        if self.enabled {
            ScopedTimer::with_accumulator(phase, &self.acc)
        } else {
            ScopedTimer::marker(phase)
        }
    }

    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.acc.get(phase)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    pub fn registry(&self) -> &Arc<MetricRegistry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    #[test]
    fn handles_accumulate_per_rank() {
        let ct = ClusterTelemetry::new(2);
        let h0 = ct.handle(0);
        let h1 = ct.handle(1);
        {
            let _s = h0.span(Phase::Routing);
        }
        {
            let _s = h1.span(Phase::ExpertFfn);
        }
        let drained = ct.drain_phase_ns();
        assert!(drained[0][Phase::Routing.index()] > 0);
        assert_eq!(drained[0][Phase::ExpertFfn.index()], 0);
        assert!(drained[1][Phase::ExpertFfn.index()] > 0);
        // Drained: a second drain sees zeros.
        let again = ct.drain_phase_ns();
        assert_eq!(again[0][Phase::Routing.index()], 0);
    }

    #[test]
    fn disabled_cluster_skips_sinks() {
        let ct = ClusterTelemetry::disabled(1);
        let ring = Arc::new(RingBufferSink::new(4));
        ct.add_sink(ring.clone());
        ct.emit(&IterationReport::new("symi", 0));
        assert!(ring.is_empty());
        assert_eq!(ct.iterations_emitted(), 0);
    }

    #[test]
    fn emit_reaches_all_sinks() {
        let ct = ClusterTelemetry::new(1);
        let a = Arc::new(RingBufferSink::new(4));
        let b = Arc::new(RingBufferSink::new(4));
        ct.add_sink(a.clone());
        ct.add_sink(b.clone());
        ct.emit(&IterationReport::new("symi", 3));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(ct.iterations_emitted(), 1);
    }
}
