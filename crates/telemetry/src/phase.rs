//! The paper's per-iteration phase taxonomy, thread-local span tracking, and
//! the `ScopedTimer` guard.
//!
//! Each rank runs on its own thread (the workspace's SPMD cluster runtime),
//! so the *active phase* is a thread-local. Entering a span pushes the phase
//! and starts a monotonic clock; dropping the guard pops back to the parent
//! phase and adds the elapsed nanoseconds to the rank's accumulator. Other
//! subsystems (e.g. the collectives traffic counter) read
//! [`current_phase`] to attribute bytes to whatever phase is active on the
//! calling thread — no plumbing through call signatures required.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Iteration phases, mirroring Fig. 12's latency breakdown taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Router gating: matmul + softmax + top-k selection.
    Routing = 0,
    /// Cluster-wide popularity all-reduce (one u64 per expert class).
    PopularityAllReduce = 1,
    /// Token dispatch all-to-all toward expert slots.
    Dispatch = 2,
    /// Expert FFN forward/backward compute.
    ExpertFfn = 3,
    /// Return all-to-all + weighted combine of expert outputs.
    Combine = 4,
    /// Expert gradient collection (Alg. 2 grad phase + EDP all-reduce).
    GradComm = 5,
    /// Adam/optimizer shard update.
    OptimizerStep = 6,
    /// Updated weight distribution to the new placement (Alg. 2 weight phase).
    WeightComm = 7,
    /// Placement scheduling + expert migration bookkeeping.
    Rebalance = 8,
    /// Anything not covered above (dense layers, glue, idle).
    Other = 9,
}

pub const NUM_PHASES: usize = 10;

/// All phases in index order (`PHASES[p as usize] == p`).
pub const PHASES: [Phase; NUM_PHASES] = [
    Phase::Routing,
    Phase::PopularityAllReduce,
    Phase::Dispatch,
    Phase::ExpertFfn,
    Phase::Combine,
    Phase::GradComm,
    Phase::OptimizerStep,
    Phase::WeightComm,
    Phase::Rebalance,
    Phase::Other,
];

impl Phase {
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Routing => "routing",
            Phase::PopularityAllReduce => "popularity_allreduce",
            Phase::Dispatch => "dispatch",
            Phase::ExpertFfn => "expert_ffn",
            Phase::Combine => "combine",
            Phase::GradComm => "grad_comm",
            Phase::OptimizerStep => "optimizer_step",
            Phase::WeightComm => "weight_comm",
            Phase::Rebalance => "rebalance",
            Phase::Other => "other",
        }
    }

    pub fn from_name(name: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.name() == name)
    }

    pub fn from_index(i: usize) -> Phase {
        PHASES[i]
    }
}

/// Classification of a link crossed by traffic, used to attribute bytes.
///
/// This is the canonical definition; `symi-collectives` re-exports it so the
/// rest of the workspace keeps importing it from either crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum LinkClass {
    /// NVLink-class: both endpoints on the same node.
    IntraNode = 0,
    /// Network-class: endpoints on different nodes.
    InterNode = 1,
    /// PCIe-class: host <-> device staging traffic.
    HostDevice = 2,
}

pub const NUM_LINK_CLASSES: usize = 3;

pub const LINK_CLASSES: [LinkClass; NUM_LINK_CLASSES] =
    [LinkClass::IntraNode, LinkClass::InterNode, LinkClass::HostDevice];

impl LinkClass {
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            LinkClass::IntraNode => "intra_node",
            LinkClass::InterNode => "inter_node",
            LinkClass::HostDevice => "host_device",
        }
    }

    pub fn from_name(name: &str) -> Option<LinkClass> {
        LINK_CLASSES.iter().copied().find(|c| c.name() == name)
    }
}

thread_local! {
    static ACTIVE_PHASE: Cell<u8> = const { Cell::new(Phase::Other as u8) };
}

/// The phase currently active on this thread (rank). `Phase::Other` when no
/// span is open.
#[inline]
pub fn current_phase() -> Phase {
    Phase::from_index(ACTIVE_PHASE.with(|p| p.get()) as usize)
}

/// Per-rank accumulator of nanoseconds spent in each phase.
///
/// Written by that rank's `ScopedTimer`s; read (and drained) by whoever
/// assembles the cluster-wide `IterationReport`.
#[derive(Debug)]
pub struct PhaseAccumulator {
    ns: [AtomicU64; NUM_PHASES],
}

impl Default for PhaseAccumulator {
    fn default() -> Self {
        Self { ns: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl PhaseAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, phase: Phase, ns: u64) {
        self.ns[phase.index()].fetch_add(ns, Ordering::Relaxed);
    }

    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()].load(Ordering::Relaxed)
    }

    /// Snapshot all phases (index order) without resetting.
    pub fn snapshot(&self) -> [u64; NUM_PHASES] {
        std::array::from_fn(|i| self.ns[i].load(Ordering::Relaxed))
    }

    /// Snapshot all phases and reset to zero (per-iteration drain).
    pub fn drain(&self) -> [u64; NUM_PHASES] {
        std::array::from_fn(|i| self.ns[i].swap(0, Ordering::Relaxed))
    }
}

/// RAII span guard: sets the thread's active phase on construction, and on
/// drop restores the parent phase and records elapsed ns into the
/// accumulator (when one is attached).
///
/// Nesting is supported: time spent in a child span is *not* subtracted from
/// the parent — each guard reports its own wall time — so top-level phase
/// spans should be disjoint (which is how the engines use them).
pub struct ScopedTimer<'a> {
    phase: Phase,
    prev: u8,
    start: Instant,
    acc: Option<&'a PhaseAccumulator>,
}

impl<'a> ScopedTimer<'a> {
    /// Open a span that records into `acc` when dropped.
    pub fn with_accumulator(phase: Phase, acc: &'a PhaseAccumulator) -> Self {
        Self::build(phase, Some(acc))
    }

    /// Open a span that only sets the thread-local phase (no timing sink).
    /// Byte attribution via [`current_phase`] still works.
    pub fn marker(phase: Phase) -> ScopedTimer<'static> {
        ScopedTimer::build(phase, None)
    }

    fn build(phase: Phase, acc: Option<&'a PhaseAccumulator>) -> ScopedTimer<'a> {
        let prev = ACTIVE_PHASE.with(|p| p.replace(phase as u8));
        ScopedTimer { phase, prev, start: Instant::now(), acc }
    }

    /// The phase this span tracks.
    pub fn phase(&self) -> Phase {
        self.phase
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        ACTIVE_PHASE.with(|p| p.set(self.prev));
        if let Some(acc) = self.acc {
            acc.add(self.phase, self.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert_eq!(Phase::from_index(p.index()), p);
        }
        for c in LINK_CLASSES {
            assert_eq!(LinkClass::from_name(c.name()), Some(c));
        }
    }

    #[test]
    fn spans_nest_and_restore() {
        assert_eq!(current_phase(), Phase::Other);
        let acc = PhaseAccumulator::new();
        {
            let _outer = ScopedTimer::with_accumulator(Phase::Dispatch, &acc);
            assert_eq!(current_phase(), Phase::Dispatch);
            {
                let _inner = ScopedTimer::with_accumulator(Phase::ExpertFfn, &acc);
                assert_eq!(current_phase(), Phase::ExpertFfn);
            }
            assert_eq!(current_phase(), Phase::Dispatch);
        }
        assert_eq!(current_phase(), Phase::Other);
        assert!(acc.get(Phase::Dispatch) > 0);
        assert!(acc.get(Phase::ExpertFfn) > 0);
    }

    #[test]
    fn drain_resets() {
        let acc = PhaseAccumulator::new();
        acc.add(Phase::Routing, 42);
        let snap = acc.drain();
        assert_eq!(snap[Phase::Routing.index()], 42);
        assert_eq!(acc.get(Phase::Routing), 0);
    }
}
