//! Pluggable report sinks: JSONL stream, CSV summary, in-memory ring buffer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::phase::{LINK_CLASSES, PHASES};
use crate::report::IterationReport;

/// Destination for completed iteration reports. Implementations must be
/// `Send + Sync`: the trainer may emit from worker threads.
pub trait Sink: Send + Sync {
    fn emit(&self, report: &IterationReport);
    /// Flush buffered output (called at end of run; best effort).
    fn flush(&self) {}
}

/// Appends one JSON object per line. The format `symi-top` tails.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }

    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, report: &IterationReport) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = writeln!(out, "{}", report.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Flat CSV with one row per iteration: scalar metrics plus per-phase
/// critical-path ns and per-class byte totals.
pub struct CsvSink {
    out: Mutex<BufWriter<File>>,
}

impl CsvSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        let mut header: Vec<String> = vec![
            "system".into(),
            "iteration".into(),
            "loss".into(),
            "popularity_entropy".into(),
            "total_drop_rate".into(),
            "placement_churn".into(),
            "straggler_spread_ns".into(),
            "iteration_ns".into(),
        ];
        header.extend(PHASES.iter().map(|p| format!("ns_{}", p.name())));
        header.extend(LINK_CLASSES.iter().map(|c| format!("bytes_{}", c.name())));
        writeln!(w, "{}", header.join(","))?;
        Ok(Self { out: Mutex::new(w) })
    }
}

impl Sink for CsvSink {
    fn emit(&self, r: &IterationReport) {
        let mut row: Vec<String> = vec![
            r.system.clone(),
            r.iteration.to_string(),
            format!("{:.6}", r.loss),
            format!("{:.6}", r.popularity_entropy()),
            format!("{:.6}", r.total_drop_rate()),
            r.placement_churn.to_string(),
            r.straggler_spread_ns().to_string(),
            r.iteration_ns().to_string(),
        ];
        row.extend(PHASES.iter().map(|&p| r.phase_ns_max(p).to_string()));
        row.extend(LINK_CLASSES.iter().map(|&c| r.bytes_for_class(c).to_string()));
        let mut out = self.out.lock().expect("csv sink poisoned");
        let _ = writeln!(out, "{}", row.join(","));
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("csv sink poisoned").flush();
    }
}

/// Bounded in-memory buffer of the most recent reports. Useful for tests and
/// for embedding telemetry in benches without touching the filesystem.
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<IterationReport>>,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), buf: Mutex::new(VecDeque::new()) }
    }

    /// Oldest-to-newest copy of the buffered reports.
    pub fn contents(&self) -> Vec<IterationReport> {
        self.buf.lock().expect("ring sink poisoned").iter().cloned().collect()
    }

    pub fn latest(&self) -> Option<IterationReport> {
        self.buf.lock().expect("ring sink poisoned").back().cloned()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring sink poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingBufferSink {
    fn emit(&self, report: &IterationReport) {
        let mut buf = self.buf.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_caps_and_orders() {
        let ring = RingBufferSink::new(2);
        for i in 0..3 {
            ring.emit(&IterationReport::new("symi", i));
        }
        let got = ring.contents();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].iteration, 1);
        assert_eq!(got[1].iteration, 2);
        assert_eq!(ring.latest().unwrap().iteration, 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_jsonl");
        let path = dir.join("run.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let mut r = IterationReport::new("deepspeed", 4);
        r.loss = 1.5;
        sink.emit(&r);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = IterationReport::parse_jsonl(text.trim()).unwrap();
        assert_eq!(back.system, "deepspeed");
        assert_eq!(back.iteration, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_sink_has_header_and_rows() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_csv");
        let path = dir.join("run.csv");
        let sink = CsvSink::create(&path).unwrap();
        sink.emit(&IterationReport::new("symi", 0));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("system,iteration,loss"));
        assert!(lines[0].contains("ns_expert_ffn"));
        assert!(lines[0].contains("bytes_inter_node"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
