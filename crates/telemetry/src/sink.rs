//! Pluggable report sinks: JSONL stream, CSV summary, in-memory ring buffer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::phase::{LINK_CLASSES, PHASES};
use crate::report::IterationReport;

/// Destination for completed iteration reports. Implementations must be
/// `Send + Sync`: the trainer may emit from worker threads.
pub trait Sink: Send + Sync {
    fn emit(&self, report: &IterationReport);
    /// Flush buffered output (called at end of run; best effort).
    fn flush(&self) {}
}

/// Appends one JSON object per line. The format `symi-top` tails.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    /// Crash-safe mode: every emitted line is pushed through to the OS
    /// immediately, so a killed process loses at most the line being
    /// written — never buffered, already-complete lines.
    write_through: bool,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)), write_through: false })
    }

    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)), write_through: false })
    }

    /// Crash-safe continuation of a JSONL stream across a process restart:
    /// a torn trailing line (a line the previous process was mid-write when
    /// it died — no final `\n`) is truncated back to the last complete
    /// line, then the sink appends in write-through mode so the same
    /// failure can only ever tear the *current* line, never a past one.
    /// Tailers (`symi-top`) see one continuous stream with no partial JSON.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        if path.exists() {
            let contents = std::fs::read(path)?;
            if !contents.is_empty() && contents.last() != Some(&b'\n') {
                // Keep up to and including the last newline; a file that is
                // one torn line with no newline at all truncates to empty.
                let keep = contents.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                let f = std::fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(keep as u64)?;
                f.sync_all()?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)), write_through: true })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, report: &IterationReport) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = writeln!(out, "{}", report.to_jsonl());
        if self.write_through {
            let _ = out.flush();
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Flat CSV with one row per iteration: scalar metrics plus per-phase
/// critical-path ns and per-class byte totals.
pub struct CsvSink {
    out: Mutex<BufWriter<File>>,
}

impl CsvSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        let mut header: Vec<String> = vec![
            "system".into(),
            "iteration".into(),
            "loss".into(),
            "popularity_entropy".into(),
            "total_drop_rate".into(),
            "placement_churn".into(),
            "straggler_spread_ns".into(),
            "iteration_ns".into(),
        ];
        header.extend(PHASES.iter().map(|p| format!("ns_{}", p.name())));
        header.extend(LINK_CLASSES.iter().map(|c| format!("bytes_{}", c.name())));
        writeln!(w, "{}", header.join(","))?;
        Ok(Self { out: Mutex::new(w) })
    }
}

impl Sink for CsvSink {
    fn emit(&self, r: &IterationReport) {
        let mut row: Vec<String> = vec![
            r.system.clone(),
            r.iteration.to_string(),
            format!("{:.6}", r.loss),
            format!("{:.6}", r.popularity_entropy()),
            format!("{:.6}", r.total_drop_rate()),
            r.placement_churn.to_string(),
            r.straggler_spread_ns().to_string(),
            r.iteration_ns().to_string(),
        ];
        row.extend(PHASES.iter().map(|&p| r.phase_ns_max(p).to_string()));
        row.extend(LINK_CLASSES.iter().map(|&c| r.bytes_for_class(c).to_string()));
        let mut out = self.out.lock().expect("csv sink poisoned");
        let _ = writeln!(out, "{}", row.join(","));
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("csv sink poisoned").flush();
    }
}

/// Bounded in-memory buffer of the most recent reports. Useful for tests and
/// for embedding telemetry in benches without touching the filesystem.
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<IterationReport>>,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), buf: Mutex::new(VecDeque::new()) }
    }

    /// Oldest-to-newest copy of the buffered reports.
    pub fn contents(&self) -> Vec<IterationReport> {
        self.buf.lock().expect("ring sink poisoned").iter().cloned().collect()
    }

    pub fn latest(&self) -> Option<IterationReport> {
        self.buf.lock().expect("ring sink poisoned").back().cloned()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring sink poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingBufferSink {
    fn emit(&self, report: &IterationReport) {
        let mut buf = self.buf.lock().expect("ring sink poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_caps_and_orders() {
        let ring = RingBufferSink::new(2);
        for i in 0..3 {
            ring.emit(&IterationReport::new("symi", i));
        }
        let got = ring.contents();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].iteration, 1);
        assert_eq!(got[1].iteration, 2);
        assert_eq!(ring.latest().unwrap().iteration, 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_jsonl");
        let path = dir.join("run.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let mut r = IterationReport::new("deepspeed", 4);
        r.loss = 1.5;
        sink.emit(&r);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = IterationReport::parse_jsonl(text.trim()).unwrap();
        assert_eq!(back.system, "deepspeed");
        assert_eq!(back.iteration, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_repairs_torn_trailing_line_and_continues_the_stream() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.jsonl");

        // A run that died mid-write: two complete lines + one torn line.
        {
            let sink = JsonlSink::resume(&path).unwrap();
            sink.emit(&IterationReport::new("symi", 0));
            sink.emit(&IterationReport::new("symi", 1));
        }
        let mut torn = std::fs::read(&path).unwrap();
        torn.extend_from_slice(b"{\"system\":\"symi\",\"iteration\":2,\"lo");
        std::fs::write(&path, &torn).unwrap();

        // The restarted run repairs the tear and continues the stream.
        let sink = JsonlSink::resume(&path).unwrap();
        sink.emit(&IterationReport::new("symi", 2));
        sink.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "torn line replaced, not duplicated: {text}");
        for (i, line) in lines.iter().enumerate() {
            let back = IterationReport::parse_jsonl(line)
                .unwrap_or_else(|e| panic!("line {i} must parse after repair: {e}"));
            assert_eq!(back.iteration, i as u64, "stream stays in order");
        }
        assert!(text.ends_with('\n'), "write-through lines are newline-terminated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_truncates_a_file_that_is_one_torn_line() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_resume_all_torn");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, b"{\"system\":\"symi\",\"iter").unwrap();
        let sink = JsonlSink::resume(&path).unwrap();
        sink.emit(&IterationReport::new("symi", 0));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(IterationReport::parse_jsonl(text.trim()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_sink_has_header_and_rows() {
        let dir = std::env::temp_dir().join("symi_telemetry_test_csv");
        let path = dir.join("run.csv");
        let sink = CsvSink::create(&path).unwrap();
        sink.emit(&IterationReport::new("symi", 0));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("system,iteration,loss"));
        assert!(lines[0].contains("ns_expert_ffn"));
        assert!(lines[0].contains("bytes_inter_node"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
