//! The Expert Placement Scheduler — Algorithm 1 of the paper.
//!
//! Replica counts are proportional to observed popularity, floored at one
//! replica per class (so every class stays reachable), rounded down, then
//! corrected so the total exactly fills the `G × S` expert slots. The
//! correction removes replicas from the classes with the largest positive
//! rounding surplus and adds to those with the largest deficit. Instances
//! are finally assigned to slots *contiguously*, which (a) packs replicas
//! of one class onto as few ranks as possible — feeding the intra+inter
//! rank all-reduce of §4.1 — and (b) guarantees every EDP communicator is a
//! contiguous rank range, enabling §4.2's pre-registered groups.

use symi_model::PlacementPolicy;

/// Algorithm 1: popularity → replica counts.
///
/// `total_slots` is the paper's `G × S` (world size × slots per rank).
/// Returns one replica count per class, summing to `total_slots`, each ≥ 1.
///
/// ```
/// use symi::compute_placement;
///
/// // One very hot expert and three cold ones over 8 slots:
/// let counts = compute_placement(&[800, 100, 50, 50], 8);
/// assert_eq!(counts.iter().sum::<usize>(), 8);
/// assert_eq!(counts[0], 5); // ~80% of demand, capped by the 1-replica floors
/// assert!(counts.iter().all(|&c| c >= 1));
/// ```
///
/// # Panics
/// Panics if `total_slots < popularity.len()` (cannot give every class a
/// replica) or if `popularity` is empty.
pub fn compute_placement(popularity: &[u64], total_slots: usize) -> Vec<usize> {
    let e = popularity.len();
    assert!(e > 0, "no expert classes");
    assert!(total_slots >= e, "need at least one slot per expert class");

    // Saturating: popularity counts near u64::MAX must degrade to "all the
    // demand" rather than aborting the scheduler (the goals below are f64
    // ratios, so saturation only flattens already-astronomic inputs).
    let total_pop: u64 = popularity.iter().fold(0u64, |acc, &p| acc.saturating_add(p));
    // With no signal (e.g. iteration 0), fall back to uniform-ish.
    let goal: Vec<f64> = if total_pop == 0 {
        vec![total_slots as f64 / e as f64; e]
    } else {
        popularity.iter().map(|&p| p as f64 / total_pop as f64 * total_slots as f64).collect()
    };

    // Initial assignment: floor(max(goal, 1)).
    let mut counts: Vec<usize> = goal.iter().map(|&g| g.max(1.0).floor() as usize).collect();
    // diff = counts - goal: how far above its ideal share each class sits.
    let mut diff: Vec<f64> = counts.iter().zip(&goal).map(|(&c, &g)| c as f64 - g).collect();

    // Rounding correction (Algorithm 1's two while-loops).
    while counts.iter().sum::<usize>() > total_slots {
        // Remove from the class most above its goal that can still shrink.
        let i = (0..e)
            .filter(|&i| counts[i] > 1)
            .max_by(|&a, &b| diff[a].total_cmp(&diff[b]))
            .expect("some class must hold more than one replica");
        counts[i] -= 1;
        diff[i] -= 1.0;
    }
    while counts.iter().sum::<usize>() < total_slots {
        let i = (0..e).min_by(|&a, &b| diff[a].total_cmp(&diff[b])).expect("non-empty");
        counts[i] += 1;
        diff[i] += 1.0;
    }
    counts
}

/// Whether a world of `ranks` ranks with `slots_per_rank` slots each can
/// still place `expert_classes` classes at the one-replica floor — the
/// elastic-recovery viability check: a shrunk world that fails this cannot
/// host every class and must stop loudly instead of re-placing.
pub fn supports_world(expert_classes: usize, slots_per_rank: usize, ranks: usize) -> bool {
    ranks > 0 && slots_per_rank * ranks >= expert_classes
}

/// Whether a replica-count vector is a legal placement over `total_slots`:
/// non-empty, one-replica floor everywhere, and exactly filling the slots.
/// [`compute_placement`] guarantees this by construction; checkpoint
/// restore re-checks it on counts read from disk, where a CRC-valid but
/// semantically impossible vector must be rejected before it reaches
/// `ExpertPlacement::from_counts`.
pub fn valid_replica_counts(counts: &[usize], total_slots: usize) -> bool {
    !counts.is_empty()
        && counts.iter().all(|&c| c >= 1)
        && counts.iter().sum::<usize>() == total_slots
}

/// Expands replica counts into the contiguous slot assignment
/// (`slot → class`), exactly Algorithm 1's final loop.
pub fn contiguous_assignment(counts: &[usize]) -> Vec<usize> {
    let mut slots = Vec::with_capacity(counts.iter().sum());
    for (class, &c) in counts.iter().enumerate() {
        slots.extend(std::iter::repeat_n(class, c));
    }
    slots
}

/// The paper's placement policy: next iteration's replication mimics the
/// popularity observed in the *previous* iteration (§3.4 — reshuffling
/// between router assignment and dispatch would be prohibitive, and the
/// previous iteration is a reliable proxy).
pub struct SymiPolicy {
    pub total_slots: usize,
}

impl PlacementPolicy for SymiPolicy {
    fn name(&self) -> &'static str {
        "symi"
    }

    fn next_replicas(&mut self, _layer: usize, popularity: &[u64], _iter: u64) -> Vec<usize> {
        compute_placement(popularity, self.total_slots)
    }

    fn on_world_shrink(&mut self, total_slots: usize) {
        self.total_slots = total_slots;
    }

    fn on_world_grow(&mut self, total_slots: usize) {
        self.total_slots = total_slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fill_slots_exactly_and_respect_floor() {
        let pop = [100u64, 0, 50, 3, 0, 900, 20, 1];
        let counts = compute_placement(&pop, 64);
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn replicas_are_proportional_to_popularity() {
        let pop = [800u64, 100, 100];
        let counts = compute_placement(&pop, 10);
        assert_eq!(counts, vec![8, 1, 1]);
    }

    #[test]
    fn zero_popularity_classes_keep_one_replica() {
        let pop = [1000u64, 0, 0, 0];
        let counts = compute_placement(&pop, 8);
        assert_eq!(counts, vec![5, 1, 1, 1]);
    }

    #[test]
    fn uniform_popularity_gives_uniform_replicas() {
        let counts = compute_placement(&[25u64; 16], 64);
        assert_eq!(counts, vec![4usize; 16]);
    }

    #[test]
    fn no_popularity_signal_falls_back_to_uniform() {
        let counts = compute_placement(&[0u64; 4], 8);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn extreme_skew_is_capped_by_the_floor() {
        // One class hogs everything; the others still get one slot each.
        let mut pop = vec![0u64; 32];
        pop[7] = 1_000_000;
        let counts = compute_placement(&pop, 64);
        assert_eq!(counts[7], 64 - 31);
        assert_eq!(counts.iter().sum::<usize>(), 64);
    }

    #[test]
    fn assignment_is_contiguous_and_ordered() {
        let counts = vec![3usize, 1, 2];
        let slots = contiguous_assignment(&counts);
        assert_eq!(slots, vec![0, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn rounding_correction_conserves_totals_for_many_shapes() {
        for slots in [8usize, 17, 64, 100] {
            for seedish in 0..20u64 {
                let pop: Vec<u64> = (0..8).map(|i| (i as u64 * 37 + seedish * 101) % 500).collect();
                let counts = compute_placement(&pop, slots);
                assert_eq!(counts.iter().sum::<usize>(), slots, "slots={slots} seed={seedish}");
                assert!(counts.iter().all(|&c| c >= 1));
            }
        }
    }

    #[test]
    fn policy_tracks_previous_iteration() {
        use symi_model::PlacementPolicy;
        let mut p = SymiPolicy { total_slots: 16 };
        let r1 = p.next_replicas(0, &[100, 10, 10, 10], 0);
        assert!(r1[0] > r1[1], "popular class gets more replicas");
        let r2 = p.next_replicas(0, &[10, 100, 10, 10], 1);
        assert!(r2[1] > r2[0], "policy follows the shift immediately");
    }

    #[test]
    #[should_panic(expected = "at least one slot per expert class")]
    fn too_few_slots_panics() {
        let _ = compute_placement(&[1, 1, 1], 2);
    }

    #[test]
    fn supports_world_tracks_the_one_replica_floor() {
        assert!(supports_world(4, 2, 2)); // 4 slots, 4 classes: exactly viable
        assert!(!supports_world(4, 2, 1)); // 2 slots cannot host 4 classes
        assert!(!supports_world(1, 1, 0)); // an empty world hosts nothing
        assert!(supports_world(4, 2, 3)); // the elastic N−1 case
    }
}
