//! The distributed SYMI MoE-layer engine: one instance per rank, executing
//! the full per-iteration pipeline of Figure 4 over real message-passing
//! collectives.
//!
//! Per iteration (numbers = the paper's step labels):
//!
//! 1. **Route** the rank's local tokens and ① all-reduce the per-class
//!    token counts (a tensor with one element per class — negligible cost)
//!    into the Layer Metadata Store.
//! 2. ② Enforce per-class capacity (sender-side even quota split) and
//!    load-balance surviving tokens across the class's replica slots, then
//!    dispatch via all-to-all.
//! 3. Run each local slot's expert, return outputs via the reverse
//!    all-to-all, combine gated outputs, and evaluate the loss.
//! 4. ③ Backward through the experts and synchronize replica gradients
//!    with the intra+inter-rank all-reduce of §4.1 over the pre-registered
//!    contiguous groups of §4.2.
//! 5. ④⑤ Collect gradient shards to the statically-sharded optimizer
//!    (Algorithm 2), ⑥ compute the next placement (Algorithm 1) from the
//!    metadata store, ⑦ step Adam, and ⑧ scatter updated weight shards
//!    according to the **new** placement — materializing the rebalance for
//!    free.
//!
//! The engine trains the expert MLPs against a caller-supplied regression
//! target (the surrounding dense transformer is orthogonal to SYMI's
//! contribution and is exercised by the functional trainer in
//! `symi-model`; the integration suite cross-checks the two).

use crate::metadata::LayerMetadataStore;
use crate::optimizer::{ReshardReport, ShardState, SymiOptimizer, WeightDistributePending};
use crate::placement::ExpertPlacement;
use crate::scheduler::{compute_placement, supports_world};
use crate::taskgraph::TaskGraph;
use std::time::Instant;
use symi_collectives::hier::ReduceMode;
use symi_collectives::{
    CommError, MembershipView, OverlapStats, RankCtx, TagSpace, WirePhase, RECOVERY_LAYER,
};
use symi_model::expert::ExpertFfn;
use symi_telemetry::{Phase, TelemetryHandle};
use symi_tensor::ops::softmax_rows;
use symi_tensor::rng::StdRng;
use symi_tensor::{init, AdamConfig, Matrix};

/// Engine configuration (one MoE layer).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    pub d_model: usize,
    pub d_ff: usize,
    pub expert_classes: usize,
    pub slots_per_rank: usize,
    /// Tokens one expert slot can absorb per iteration (§3.4).
    pub slot_capacity: usize,
    pub adam: AdamConfig,
    pub seed: u64,
    /// Distinguishes the message tag space of multiple engines (one per
    /// transformer layer) sharing the same ranks. Must fit the structured
    /// tag's 6-bit layer field *below* the reserved recovery plane
    /// (< [`RECOVERY_LAYER`]).
    pub layer_id: usize,
}

impl EngineConfig {
    pub fn total_slots(&self, nodes: usize) -> usize {
        self.slots_per_rank * nodes
    }
}

/// A weight scatter issued at the end of iteration *i* whose fence is
/// deferred into iteration *i+1*: the receives complete under the cover of
/// *i+1*'s routing and popularity phases, and the slot writes (plus the
/// placement switch they realize) happen at the hard fence before *i+1*'s
/// dispatch reads either.
struct PendingWeights {
    state: WeightDistributePending,
    placement: ExpertPlacement,
}

/// Statistics from one engine iteration, identical on every rank.
#[derive(Clone, Debug)]
pub struct IterStats {
    /// Mean squared error of the gated expert outputs vs the targets
    /// (global mean over tokens). On a `degraded` iteration the advisory
    /// exchange that aggregates it may have starved, leaving a rank-local
    /// value.
    pub loss: f32,
    /// Globally aggregated per-class popularity.
    pub popularity: Vec<u64>,
    pub survived: usize,
    pub dropped: usize,
    /// Globally aggregated per-class kept assignments (≤ popularity; the
    /// difference is the class's drop count).
    pub kept_per_class: Vec<u64>,
    /// Replica counts used this iteration.
    pub replicas: Vec<usize>,
    /// Slots whose resident class changed in the placement computed for the
    /// *next* iteration (the rebalance SYMI materializes for free).
    pub placement_churn: usize,
    /// Whether this iteration degraded gracefully: a popularity or stats
    /// all-reduce starved, so the engine reused the previous placement (a
    /// correct, merely-stale schedule per §3.4) instead of aborting. When
    /// set, `popularity`/`survived`/`dropped`/`kept_per_class` may be stale
    /// or rank-local — advisory only.
    pub degraded: bool,
}

/// What one successful [`MoeLayerEngine::recover`] call did, identical on
/// every survivor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Membership epoch agreed by the survivors (strictly increases).
    pub membership_epoch: u64,
    /// Surviving world size (`old_world − |dead_ranks|`).
    pub world_size: usize,
    /// Physical ranks declared dead by this agreement round.
    pub dead_ranks: Vec<usize>,
    /// First iteration the shrunk world will run. The iteration in flight
    /// when the failure hit is skipped, never re-run.
    pub resume_iteration: u64,
    /// Stale messages purged from the mailbox before resuming.
    pub stale_discarded: u64,
    /// Optimizer re-shard accounting (kept / reseeded / reinitialized).
    pub reshard: ReshardReport,
}

/// What one successful scale-out did — identical on every member of the
/// grown world, survivors ([`MoeLayerEngine::admit`]) and joiner
/// ([`MoeLayerEngine::join`]) alike.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinStats {
    /// Membership epoch agreed by the grown world (strictly increases).
    pub membership_epoch: u64,
    /// Grown world size (`old_world + 1`).
    pub world_size: usize,
    /// Physical rank admitted by this agreement round.
    pub joiner: usize,
    /// First iteration the grown world will run. A join happens at a clean
    /// iteration boundary, so unlike recovery nothing is skipped: this is
    /// the iteration the survivors were about to run anyway.
    pub resume_iteration: u64,
    /// Stale messages purged from the mailbox before resuming.
    pub stale_discarded: u64,
    /// Optimizer re-shard accounting. On a grow, `reinitialized_params`
    /// and `reseeded_params` are always 0 and `transferred_params` counts
    /// the fp32 Adam slices moved to their new owners moments-and-all.
    pub reshard: ReshardReport,
}

/// A rank's full training state: enough to rebuild a bit-identical engine
/// on a fresh cluster via [`MoeLayerEngine::from_snapshot`]. Used by the
/// recovery oracle tests and as the natural checkpoint payload.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    pub iteration: u64,
    pub world_size: usize,
    pub logical_rank: usize,
    /// Per-class replica counts of the active placement.
    pub replica_counts: Vec<usize>,
    /// Latest globally-agreed popularity, if any iteration completed.
    pub popularity: Option<Vec<u64>>,
    /// This rank's fp32 optimizer shards (one per expert class).
    pub shards: Vec<ShardState>,
}

/// Sender-side capacity enforcement + replica load balancing (§3.4).
///
/// Each slot absorbs at most `slot_capacity` tokens per iteration, and the
/// budget is split deterministically over sender ranks (`slot_capacity / n`
/// each, remainder rotated across ranks by slot index so no rank
/// systematically wins the leftovers). A token starts at its class's slot
/// `gid % replicas` (the router extension of §3.2 step 2) and linearly
/// probes the class's other slots when that slot's budget is exhausted;
/// only when every replica is full is the token dropped.
///
/// This is a per-*slot* cap: the previous per-class quota
/// (`slot_capacity × replicas` split over ranks) let `gid % replicas`
/// collisions oversubscribe one slot far past `slot_capacity` while its
/// siblings idled.
///
/// Returns `(kept local token ids, their global slots, taken per class)`.
pub fn assign_token_slots(
    assignment: &[usize],
    placement: &ExpertPlacement,
    slot_capacity: usize,
    rank: usize,
    rank_token_offset: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = placement.ranks();
    let e = placement.replica_counts().len();
    let mut slot_taken = vec![0usize; placement.total_slots()];
    let share =
        |slot: usize| slot_capacity / n + usize::from((rank + slot) % n < slot_capacity % n);
    let mut taken = vec![0usize; e];
    let mut kept = Vec::with_capacity(assignment.len());
    let mut kept_slot = Vec::with_capacity(assignment.len());
    for (t, &class) in assignment.iter().enumerate() {
        let class_slots = placement.slots_of_class(class);
        let start = (rank_token_offset + t) % class_slots.len();
        let chosen = (0..class_slots.len())
            .map(|probe| class_slots[(start + probe) % class_slots.len()])
            .find(|&slot| slot_taken[slot] < share(slot));
        if let Some(slot) = chosen {
            slot_taken[slot] += 1;
            taken[class] += 1;
            kept.push(t);
            kept_slot.push(slot);
        }
    }
    (kept, kept_slot, taken)
}

/// Folds the survivors' join-agreement payloads
/// (`[iterations, adam_step, pop_len, pop…]`, indexed by physical rank;
/// the joiner's placeholder at index `joiner` is skipped): the resume
/// iteration and Adam step are the maxima, and the freshest popularity
/// wins (ties to the lowest physical rank, so every member picks the
/// same).
fn fold_join_payloads(
    payloads: &[Option<Vec<u64>>],
    joiner: usize,
) -> (u64, u64, Option<Vec<u64>>) {
    let mut resume_iter = 0u64;
    let mut adam_t = 0u64;
    let mut best: Option<(u64, Vec<u64>)> = None;
    for (phys, p) in payloads.iter().enumerate() {
        if phys == joiner {
            continue;
        }
        let Some(p) = p else { continue };
        let it = p[0];
        resume_iter = resume_iter.max(it);
        adam_t = adam_t.max(p[1]);
        let len = p[2] as usize;
        debug_assert!(p.len() >= 3 + len, "malformed join payload");
        if len > 0 && best.as_ref().is_none_or(|(bi, _)| it > *bi) {
            best = Some((it, p[3..3 + len].to_vec()));
        }
    }
    (resume_iter, adam_t, best.map(|(_, pop)| pop))
}

/// Per-rank SYMI engine for one MoE layer.
///
/// All internal geometry (placement, sharding, dispatch) runs over dense
/// **logical** ranks `0..view.size()`; physical ranks appear only at the
/// wire. On the initial full-world view the two coincide, so the healthy
/// path is bit-identical to the pre-elastic engine. After a permanent rank
/// loss, [`MoeLayerEngine::recover`] shrinks the view and every downstream
/// structure with it.
pub struct MoeLayerEngine {
    cfg: EngineConfig,
    /// Agreed cluster membership this engine's geometry is built over.
    view: MembershipView,
    /// This rank's logical rank within `view`.
    lrank: usize,
    /// Physical expert instances, one per local slot.
    slots: Vec<ExpertFfn>,
    pub placement: ExpertPlacement,
    optimizer: SymiOptimizer,
    pub metadata: LayerMetadataStore,
    /// Shared (replicated, frozen) router weights — router training is
    /// plain data parallelism and orthogonal to the mechanism under test.
    router_w: Matrix,
    iteration: u64,
    /// Iterations that fell back to the previous placement because a
    /// degradable collective (popularity/stats sync) starved.
    degraded_iterations: u64,
    /// Overlap scheduler switch: when set, the weight scatter issued at the
    /// end of each iteration stays in flight across the iteration boundary
    /// and gradient collection interleaves with the backward GEMMs. Off by
    /// default (`SYMI_OVERLAP=on` or [`MoeLayerEngine::set_overlap`]); both
    /// modes are bit-exact.
    overlap: bool,
    /// The weight scatter currently in flight across an iteration boundary
    /// (overlap mode only).
    pending_weights: Option<PendingWeights>,
    /// Cumulative NaN router probabilities observed (exported as the
    /// `router.nan_logits` gauge). A NaN never panics the argmax — NaN
    /// sorts last — but it signals upstream numeric trouble loudly.
    nan_logits: u64,
    telemetry: TelemetryHandle,
}

/// `SYMI_OVERLAP` env switch: `on`/`1`/`true` enables the overlap
/// scheduler, anything else (or unset) keeps the sequential pipeline.
fn overlap_from_env() -> bool {
    std::env::var("SYMI_OVERLAP")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
        .unwrap_or(false)
}

impl MoeLayerEngine {
    /// Canonical initial flat weights of one class — deterministic in the
    /// class id, identical on every rank, and the re-init source of last
    /// resort during elastic recovery.
    fn canonical_class_params(cfg: &EngineConfig, class: usize) -> Vec<f32> {
        ExpertFfn::new(cfg.d_model, cfg.d_ff, cfg.seed ^ (0xe0 + class as u64)).flat_params()
    }

    /// Builds the rank-local engine. All ranks construct identical initial
    /// expert weights, router, and placement from `cfg.seed`.
    pub fn new(rank: usize, nodes: usize, cfg: EngineConfig) -> Self {
        Self::new_in_world(rank, nodes, nodes, cfg)
    }

    /// Builds the rank-local engine over a physical cluster of `world`
    /// ranks of which only the first `active` participate — the standby
    /// model for scale-out: ranks `active..world` exist (threads, channels)
    /// but run no engine until [`MoeLayerEngine::join`] admits them. With
    /// `active == world` this is exactly [`MoeLayerEngine::new`].
    pub fn new_in_world(rank: usize, active: usize, world: usize, cfg: EngineConfig) -> Self {
        assert!(
            cfg.layer_id < RECOVERY_LAYER,
            "layer {} collides with the recovery tag plane",
            cfg.layer_id
        );
        assert!(rank < active, "rank {rank} is a standby rank in a {active}-active world");
        let placement = ExpertPlacement::uniform(cfg.expert_classes, active, cfg.slots_per_rank);
        // Canonical initial weights per class (deterministic in class id).
        let class_params: Vec<Vec<f32>> = (0..cfg.expert_classes)
            .map(|class| Self::canonical_class_params(&cfg, class))
            .collect();
        let slots = placement
            .slots_of_rank(rank)
            .map(|slot| {
                let class = placement.class_of_slot(slot);
                let mut e = ExpertFfn::new(cfg.d_model, cfg.d_ff, 0);
                e.load_flat(&class_params[class]);
                e
            })
            .collect();
        let view = MembershipView::partial(world, active);
        let optimizer = SymiOptimizer::with_view(view.clone(), rank, cfg.adam, &class_params);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x70c7);
        let router_w = init::normal(cfg.d_model, cfg.expert_classes, 0.3, &mut rng);
        Self {
            cfg,
            view,
            lrank: rank,
            slots,
            placement,
            optimizer,
            metadata: LayerMetadataStore::new(1, 64),
            router_w,
            iteration: 0,
            degraded_iterations: 0,
            overlap: overlap_from_env(),
            pending_weights: None,
            nan_logits: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// How many iterations so far degraded to the previous placement
    /// instead of aborting on a starved popularity/stats collective.
    pub fn degraded_iterations(&self) -> u64 {
        self.degraded_iterations
    }

    /// Cumulative NaN router probabilities observed (the `router.nan_logits`
    /// gauge). Nonzero means something upstream produced inf/NaN logits;
    /// routing survived by sorting NaN last.
    pub fn nan_logits(&self) -> u64 {
        self.nan_logits
    }

    /// Enables or disables the overlap scheduler (overrides `SYMI_OVERLAP`).
    /// Takes effect at the next [`MoeLayerEngine::iteration`]; call
    /// [`MoeLayerEngine::drain`] first when switching overlap → sequential
    /// mid-run so no scatter is left in flight.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Whether the overlap scheduler is active.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap
    }

    /// Hard fence: completes the cross-iteration weight scatter, writes the
    /// slots, and switches to the placement it materializes. Returns the
    /// hidden/exposed transfer accounting, or `None` if nothing was in
    /// flight.
    fn complete_pending_weights(
        &mut self,
        ctx: &mut RankCtx,
    ) -> Result<Option<OverlapStats>, CommError> {
        let Some(pw) = self.pending_weights.take() else {
            return Ok(None);
        };
        let (new_weights, stats) = self.optimizer.distribute_weights_finish(ctx, pw.state)?;
        {
            let _span = self.telemetry.span(Phase::WeightComm);
            for (local, weights) in new_weights.into_iter().enumerate() {
                self.slots[local].load_flat(&weights);
            }
        }
        self.placement = pw.placement;
        Ok(Some(stats))
    }

    /// Lands any weight scatter still in flight (overlap mode issues one at
    /// the end of every iteration). Call before inspecting slot weights,
    /// checkpointing the slots, or switching to sequential mode; a no-op
    /// when nothing is pending.
    pub fn drain(&mut self, ctx: &mut RankCtx) -> Result<(), CommError> {
        self.complete_pending_weights(ctx)?;
        Ok(())
    }

    /// The membership view the engine's geometry is currently built over.
    pub fn membership(&self) -> &MembershipView {
        &self.view
    }

    /// This rank's logical rank within [`MoeLayerEngine::membership`].
    pub fn logical_rank(&self) -> usize {
        self.lrank
    }

    /// Completed-iteration counter (also the next iteration's tag space).
    pub fn iteration_count(&self) -> u64 {
        self.iteration
    }

    /// The configuration this engine was built with. A checkpoint stamps
    /// these fields into its header so a restart against a different
    /// geometry is rejected loudly instead of corrupting the math.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Whether an error is survivable by falling back to stale state: a
    /// starved receive (plain or retry-escalated) can mean a transient
    /// stall somewhere in the cluster, and §3.4's schedule is only an
    /// optimization — running one more iteration on the old placement is
    /// always correct. A dead peer (`PeerGone`) or corrupt wire data
    /// (`LengthMismatch`) is not survivable and still aborts.
    fn is_degradable(e: &CommError) -> bool {
        matches!(e, CommError::RecvTimeout { .. } | CommError::Protocol(_))
    }

    /// Installs this rank's telemetry handle; the iteration pipeline then
    /// times itself under the phase taxonomy, and bytes sent while a span is
    /// open are attributed to that phase by the traffic counters.
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.optimizer.attach_telemetry(handle.clone());
        self.telemetry = handle;
    }

    /// Flat weights currently loaded in a local slot (testing support).
    pub fn slot_weights(&self, local_slot: usize) -> Vec<f32> {
        self.slots[local_slot].flat_params()
    }

    /// The optimizer's fp32 master shard for a class (testing support).
    pub fn master_shard(&self, class: usize) -> &[f32] {
        self.optimizer.master_shard(class)
    }

    /// Flat gradients accumulated in a local slot by the last backward
    /// (testing support — the finite-difference probe reads these).
    pub fn slot_grads(&self, local_slot: usize) -> Vec<f32> {
        self.slots[local_slot].flat_grads()
    }

    /// Whether an error is a candidate for **elastic recovery**: a dead
    /// peer, an escalated protocol failure, or a starved receive — the
    /// error classes a permanently-killed rank produces at its survivors.
    /// (Contrast [`is_degradable`]: degradation retries the old placement
    /// on the *same* world; recovery shrinks the world.)
    ///
    /// [`is_degradable`]: MoeLayerEngine::is_degradable
    pub fn can_recover(err: &CommError) -> bool {
        matches!(
            err,
            CommError::PeerGone { .. } | CommError::Protocol(_) | CommError::RecvTimeout { .. }
        )
    }

    /// Elastic recovery from a permanent rank loss — the paper's "free
    /// re-placement" property (§3.3) extended to a shrinking world: because
    /// every slot receives fresh weights every iteration anyway, surviving
    /// a dead rank only requires agreeing on who is left and re-running the
    /// same placement + materialization machinery over `N−1` ranks.
    ///
    /// Driver order:
    /// 1. survivors agree on the dead-rank set and a bumped **membership
    ///    epoch** ([`RankCtx::agree_membership`]), exchanging
    ///    `(completed iterations, latest popularity)` payloads;
    /// 2. viability check: the shrunk world must still hold every class at
    ///    the one-replica floor ([`supports_world`] — if not, stop loudly);
    /// 3. the resume iteration is `max(completed) + 1`: the aborted
    ///    iteration is *skipped*, never re-run, so its half-delivered
    ///    traffic can never alias the resumed protocol; everything older is
    ///    purged from the mailbox ([`RankCtx::discard_stale_below`]);
    /// 4. Algorithm 1 re-runs over the freshest surviving popularity and
    ///    `total_slots` shrunk by the dead rank's slots;
    /// 5. optimizer ownership re-shards over the survivors
    ///    ([`SymiOptimizer::reshard`]): kept slices keep their fp32 moments,
    ///    acquired slices are rebuilt from the freshest surviving copy with
    ///    moments reset (exported as the `reseeded_params` gauge);
    /// 6. the new placement is materialized from the re-sharded masters.
    ///
    /// On success the engine is ready for the next [`MoeLayerEngine::iteration`]
    /// call: same classes, fewer slots — degraded capacity, not a dead run.
    ///
    /// # Panics
    /// Panics when the shrunk world cannot host every expert class, when
    /// this rank is evicted by its peers (cluster split), or when the
    /// membership protocol fails to converge.
    pub fn recover(
        &mut self,
        ctx: &mut RankCtx,
        err: &CommError,
    ) -> Result<RecoveryStats, CommError> {
        let me_phys = self.view.physical_of(self.lrank);
        // The peer the error names is a *hint*, not evidence: inside a ring
        // collective this rank may be starving behind a live survivor that
        // is itself stuck on the real corpse. `agree_membership` gives every
        // suspect a full round to answer and trusts only the wire (closed
        // channel / silence through the round budget) to declare death.
        let suspects: Vec<usize> = match err {
            CommError::PeerGone { rank } => vec![*rank],
            CommError::Protocol(f) => vec![f.from],
            CommError::RecvTimeout { from, .. } => vec![*from],
            other => panic!("recover() called on an unrecoverable error: {other:?}"),
        }
        .into_iter()
        .filter(|&r| r != me_phys && self.view.is_alive(r))
        .collect();

        // Payload: [completed iterations, popularity length, popularity…].
        let mut payload = vec![self.iteration, 0];
        if let Some(pop) = self.metadata.latest(0) {
            payload[1] = pop.len() as u64;
            payload.extend_from_slice(pop);
        }
        let timeout = ctx.default_membership_timeout();
        let (new_view, payloads) =
            ctx.agree_membership(&self.view, &suspects, &payload, timeout)?;
        // Namespace every post-agreement message under the new membership
        // generation (stragglers from the aborted epoch are dropped, a
        // later re-join of the same physical rank starts a fresh sequence
        // space), and record the epoch's world bound in the group registry.
        ctx.set_membership_gen(new_view.epoch());
        ctx.groups().register_epoch(new_view.epoch(), new_view.world());
        let dead_ranks: Vec<usize> = (0..self.view.world())
            .filter(|&r| self.view.is_alive(r) && !new_view.is_alive(r))
            .collect();
        let new_n = new_view.size();
        assert!(
            supports_world(self.cfg.expert_classes, self.cfg.slots_per_rank, new_n),
            "rank {me_phys}: {new_n} survivors x {} slots cannot host {} expert classes \
             at the one-replica floor — elastic recovery is not viable",
            self.cfg.slots_per_rank,
            self.cfg.expert_classes,
        );

        // Fold survivor payloads: the resume iteration skips past every
        // survivor's last attempt, and the freshest popularity wins (ties
        // to the lowest physical rank, so every survivor picks the same).
        let mut resume_iter = self.iteration + 1;
        let mut best: Option<(u64, Vec<u64>)> = None;
        for p in payloads.iter().flatten() {
            let it = p[0];
            resume_iter = resume_iter.max(it + 1);
            let len = p[1] as usize;
            debug_assert!(p.len() >= 2 + len, "malformed recovery payload");
            if len > 0 && best.as_ref().is_none_or(|(bi, _)| it > *bi) {
                best = Some((it, p[2..2 + len].to_vec()));
            }
        }
        let popularity = best.map(|(_, pop)| pop);

        // Purge everything the aborted attempt (and older) left in flight:
        // the resumed protocol starts from a clean fenced stream. An
        // overlapped weight scatter from the old world is abandoned with
        // it — `discard_stale_below` cancels its posted receives, and the
        // re-sharded masters re-materialize the slots below.
        self.pending_weights = None;
        let stale_discarded = ctx.discard_stale_below(resume_iter << 5);

        // Algorithm 1 over the survivors: same classes, fewer slots.
        let total = self.cfg.total_slots(new_n);
        let counts = match &popularity {
            Some(pop) => compute_placement(pop, total),
            None => compute_placement(&vec![0u64; self.cfg.expert_classes], total),
        };
        let new_placement = ExpertPlacement::from_counts(&counts, self.cfg.slots_per_rank);

        // Re-shard optimizer ownership over the survivors, sourcing the
        // acquired slices from the freshest surviving copies.
        let local_class_weights: Vec<(usize, Vec<f32>)> = self
            .placement
            .classes_on_rank(self.lrank)
            .into_iter()
            .map(|(class, locals)| (class, self.slots[locals[0]].flat_params()))
            .collect();
        let cfg = self.cfg;
        let report = self.optimizer.reshard(
            ctx,
            &new_view,
            &self.placement,
            &local_class_weights,
            &|class| Self::canonical_class_params(&cfg, class),
            TagSpace::new(RECOVERY_LAYER, resume_iter),
        )?;

        // Adopt the shrunk world and materialize the new placement.
        self.lrank = new_view.logical_of(me_phys).expect("agreement keeps the caller alive");
        self.view = new_view;
        self.placement = new_placement;
        self.iteration = resume_iter;
        if let Some(pop) = popularity {
            self.metadata.record(0, pop);
        }
        self.materialize_slots(ctx)?;

        if self.telemetry.is_enabled() {
            self.telemetry.gauge("membership_epoch").set(self.view.epoch() as f64);
            self.telemetry.gauge("world_size").set(new_n as f64);
            self.telemetry.gauge("reseeded_params").set(report.reseeded_params as f64);
            self.telemetry.gauge("reinitialized_params").set(report.reinitialized_params as f64);
            self.telemetry.counter("recoveries_total").inc();
        }

        Ok(RecoveryStats {
            membership_epoch: self.view.epoch(),
            world_size: new_n,
            dead_ranks,
            resume_iteration: resume_iter,
            stale_discarded,
            reshard: report,
        })
    }

    /// Loads every local slot of the current placement with the fp16 image
    /// of the sharded fp32 masters, over the recovery tag plane. Used after
    /// [`MoeLayerEngine::recover`] (the recovered placement's weights) and
    /// after [`MoeLayerEngine::from_snapshot`] (the oracle side seeds its
    /// slots from the exact restored state the same way, which is what
    /// makes the post-recovery comparison bit-exact).
    pub fn materialize_slots(&mut self, ctx: &mut RankCtx) -> Result<(), CommError> {
        let tags = TagSpace::new(RECOVERY_LAYER, self.iteration);
        let shards = self.optimizer.master_weight_shards();
        let new_weights = self.optimizer.distribute_weights(ctx, &self.placement, &shards, tags)?;
        self.slots = new_weights
            .into_iter()
            .map(|w| {
                let mut e = ExpertFfn::new(self.cfg.d_model, self.cfg.d_ff, 0);
                e.load_flat(&w);
                e
            })
            .collect();
        Ok(())
    }

    /// The survivor side of **elastic scale-out** — the inverse of
    /// [`MoeLayerEngine::recover`]: admit a standby physical rank into the
    /// membership and grow every downstream structure with it. Call at a
    /// clean iteration boundary on every current member, paired with
    /// [`MoeLayerEngine::join`] on the joiner.
    ///
    /// Driver order:
    /// 1. land any in-flight overlapped weight scatter
    ///    (`complete_pending_weights`) — the join must not race a scatter
    ///    issued under the old world's geometry;
    /// 2. bootstrap the joiner ([`RankCtx::send_join_bootstrap`]): it
    ///    cannot know the current view/epoch on its own;
    /// 3. all members — joiner included — agree on the grown membership
    ///    and a bumped epoch ([`RankCtx::agree_membership`]), survivors
    ///    exchanging `(completed iterations, Adam step, latest popularity)`
    ///    payloads;
    /// 4. the membership generation bump namespaces every subsequent
    ///    message, and the epoch's world bound is registered with the
    ///    group registry so survivor↔joiner communicator groups resolve;
    /// 5. Algorithm 1 re-runs over `total_slots` grown by the joiner's
    ///    slots;
    /// 6. optimizer ownership re-shards over `N+1` ranks
    ///    ([`SymiOptimizer::reshard`], growing direction): shed fp32
    ///    slices transfer to their new owners **moments and all** — a
    ///    join never degrades optimizer state the way acquire-on-shrink
    ///    legitimately does;
    /// 7. the grown placement is materialized from the re-sharded masters
    ///    (the joiner's fp16 slots arrive through the same distribute
    ///    path every slot uses every iteration).
    ///
    /// Because a boundary join aborts nothing, `resume_iteration` is the
    /// iteration the survivors were about to run anyway — zero degraded
    /// iterations, and the grown cluster is bit-exact with a fresh
    /// `N+1`-rank cluster restored from the post-join snapshots.
    ///
    /// # Panics
    /// Panics if `joiner` is already a member, or if a survivor died
    /// concurrently (mixed join+death changes must recover first).
    pub fn admit(&mut self, ctx: &mut RankCtx, joiner: usize) -> Result<JoinStats, CommError> {
        assert!(!self.view.is_alive(joiner), "rank {joiner} is already a member");
        let me_phys = self.view.physical_of(self.lrank);
        self.complete_pending_weights(ctx)?;
        ctx.send_join_bootstrap(joiner, &self.view)?;

        // Payload: [completed iterations, Adam step, pop length, pop…].
        let mut payload = vec![self.iteration, self.optimizer.adam_step_count(), 0];
        if let Some(pop) = self.metadata.latest(0) {
            payload[2] = pop.len() as u64;
            payload.extend_from_slice(pop);
        }
        let grown = self.view.with_joined(joiner);
        let timeout = ctx.default_membership_timeout();
        let (new_view, payloads) = ctx.agree_membership(&grown, &[], &payload, timeout)?;
        ctx.set_membership_gen(new_view.epoch());
        ctx.groups().register_epoch(new_view.epoch(), new_view.world());
        for r in self.view.survivors() {
            assert!(
                new_view.is_alive(r),
                "rank {r} died during the admission of rank {joiner} — mixed join+death \
                 membership change is unsupported: recover the death first, then admit"
            );
        }
        assert!(new_view.is_alive(joiner), "the agreement evicted the joiner it was admitting");

        let (resume_iter, adam_t, popularity) = fold_join_payloads(&payloads, joiner);
        debug_assert_eq!(self.iteration, resume_iter, "admit must run at a clean boundary");
        debug_assert_eq!(self.optimizer.adam_step_count(), adam_t, "survivor Adam steps differ");

        // Purge strictly-older traffic; the boundary iteration itself was
        // never started, so nothing of it is in flight.
        self.pending_weights = None;
        let stale_discarded = ctx.discard_stale_below(resume_iter << 5);

        // Algorithm 1 over the grown world: same classes, more slots.
        let new_n = new_view.size();
        let total = self.cfg.total_slots(new_n);
        let counts = match &popularity {
            Some(pop) => compute_placement(pop, total),
            None => compute_placement(&vec![0u64; self.cfg.expert_classes], total),
        };
        let new_placement = ExpertPlacement::from_counts(&counts, self.cfg.slots_per_rank);

        // Grow the optimizer geometry: shed slices travel with full state.
        let cfg = self.cfg;
        let report = self.optimizer.reshard(
            ctx,
            &new_view,
            &self.placement,
            &[],
            &|class| Self::canonical_class_params(&cfg, class),
            TagSpace::new(RECOVERY_LAYER, resume_iter),
        )?;

        // Adopt the grown world and materialize the new placement.
        self.lrank = new_view.logical_of(me_phys).expect("agreement keeps the caller alive");
        self.view = new_view;
        self.placement = new_placement;
        self.iteration = resume_iter;
        if let Some(pop) = popularity {
            self.metadata.record(0, pop);
        }
        self.materialize_slots(ctx)?;

        if self.telemetry.is_enabled() {
            self.telemetry.gauge("membership_epoch").set(self.view.epoch() as f64);
            self.telemetry.gauge("world_size").set(new_n as f64);
            self.telemetry.gauge("transferred_params").set(report.transferred_params as f64);
            self.telemetry.counter("joins_total").inc();
        }

        Ok(JoinStats {
            membership_epoch: self.view.epoch(),
            world_size: new_n,
            joiner,
            resume_iteration: resume_iter,
            stale_discarded,
            reshard: report,
        })
    }

    /// The joiner's side of elastic scale-out: blocks (up to `deadline`)
    /// for a survivor's bootstrap announcing the current view, takes part
    /// in the grown-membership agreement, receives its fp32 optimizer
    /// shards over the wire — Adam moments included — and materializes its
    /// fp16 slots through the standard distribute path. Pairs with
    /// [`MoeLayerEngine::admit`] on every current member; on success the
    /// engine is ready for the next collective [`MoeLayerEngine::iteration`].
    pub fn join(
        ctx: &mut RankCtx,
        cfg: EngineConfig,
        deadline: std::time::Duration,
    ) -> Result<(Self, JoinStats), CommError> {
        assert!(
            cfg.layer_id < RECOVERY_LAYER,
            "layer {} collides with the recovery tag plane",
            cfg.layer_id
        );
        let me = ctx.rank();
        let (boot_view, first_sender) = ctx.await_join_bootstrap(deadline)?;
        assert!(boot_view.logical_of(me).is_none(), "a joiner must be new to the old view");
        let grown = boot_view.with_joined(me);
        // The agreement commits epoch+1; bump the generation *before*
        // sending the first agreement message so this rank's traffic is
        // never mistaken for a stale incarnation's.
        ctx.set_membership_gen(grown.epoch() + 1);
        // The joiner has no history: survivors skip its placeholder payload.
        let payload = vec![0u64, 0, 0];
        let timeout = ctx.default_membership_timeout();
        let (new_view, payloads) = ctx.agree_membership(&grown, &[], &payload, timeout)?;
        ctx.groups().register_epoch(new_view.epoch(), new_view.world());
        // Every survivor sent a bootstrap; only the first was consumed.
        let others: Vec<usize> =
            boot_view.survivors().into_iter().filter(|&p| p != first_sender).collect();
        ctx.drain_join_bootstraps(&others)?;

        let (resume_iter, adam_t, popularity) = fold_join_payloads(&payloads, me);
        ctx.discard_stale_below(resume_iter << 5);

        let new_n = new_view.size();
        let total = cfg.total_slots(new_n);
        let counts = match &popularity {
            Some(pop) => compute_placement(pop, total),
            None => compute_placement(&vec![0u64; cfg.expert_classes], total),
        };
        let placement = ExpertPlacement::from_counts(&counts, cfg.slots_per_rank);

        let param_count = Self::canonical_class_params(&cfg, 0).len();
        let (optimizer, report) = SymiOptimizer::join(
            ctx,
            &boot_view,
            &new_view,
            cfg.adam,
            cfg.expert_classes,
            param_count,
            adam_t,
            TagSpace::new(RECOVERY_LAYER, resume_iter),
        )?;

        let mut metadata = LayerMetadataStore::new(1, 64);
        if let Some(pop) = &popularity {
            metadata.record(0, pop.clone());
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x70c7);
        let router_w = init::normal(cfg.d_model, cfg.expert_classes, 0.3, &mut rng);
        let lrank = new_view.logical_of(me).expect("the agreement admitted this rank");
        let stats = JoinStats {
            membership_epoch: new_view.epoch(),
            world_size: new_n,
            joiner: me,
            resume_iteration: resume_iter,
            stale_discarded: 0,
            reshard: report,
        };
        let mut engine = Self {
            cfg,
            view: new_view,
            lrank,
            slots: Vec::new(),
            placement,
            optimizer,
            metadata,
            router_w,
            iteration: resume_iter,
            degraded_iterations: 0,
            overlap: overlap_from_env(),
            pending_weights: None,
            nan_logits: 0,
            telemetry: TelemetryHandle::disabled(),
        };
        engine.materialize_slots(ctx)?;
        Ok((engine, stats))
    }

    /// Captures this rank's full training state (snapshot support and the
    /// oracle side of the elastic recovery tests).
    pub fn snapshot(&self) -> EngineSnapshot {
        // Fast-forward past an in-flight weight scatter: the fp32 masters
        // have already stepped, so the authoritative placement is the
        // pending one — a restart materializes from the masters and gets
        // the exact fp16 image the fence would have installed.
        let replica_counts = match &self.pending_weights {
            Some(pw) => pw.placement.replica_counts(),
            None => self.placement.replica_counts(),
        };
        EngineSnapshot {
            iteration: self.iteration,
            world_size: self.view.size(),
            logical_rank: self.lrank,
            replica_counts,
            popularity: self.metadata.latest(0).map(|p| p.to_vec()),
            shards: self.optimizer.export_shard_states(),
        }
    }

    /// Rebuilds an engine from a snapshot on a fresh `world_size`-rank
    /// cluster (logical rank `snap.logical_rank`). The slots are *not* yet
    /// materialized — call [`MoeLayerEngine::materialize_slots`]
    /// collectively before the first iteration.
    pub fn from_snapshot(cfg: EngineConfig, snap: EngineSnapshot) -> Self {
        assert!(
            cfg.layer_id < RECOVERY_LAYER,
            "layer {} collides with the recovery tag plane",
            cfg.layer_id
        );
        let view = MembershipView::full(snap.world_size);
        let placement = ExpertPlacement::from_counts(&snap.replica_counts, cfg.slots_per_rank);
        let param_count = Self::canonical_class_params(&cfg, 0).len();
        let optimizer = SymiOptimizer::from_shard_states(
            view.clone(),
            snap.logical_rank,
            cfg.adam,
            param_count,
            snap.shards,
        );
        let mut metadata = LayerMetadataStore::new(1, 64);
        if let Some(pop) = &snap.popularity {
            metadata.record(0, pop.clone());
        }
        let slots = placement
            .slots_of_rank(snap.logical_rank)
            .map(|_| ExpertFfn::new(cfg.d_model, cfg.d_ff, 0))
            .collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x70c7);
        let router_w = init::normal(cfg.d_model, cfg.expert_classes, 0.3, &mut rng);
        Self {
            cfg,
            view,
            lrank: snap.logical_rank,
            slots,
            placement,
            optimizer,
            metadata,
            router_w,
            iteration: snap.iteration,
            degraded_iterations: 0,
            overlap: overlap_from_env(),
            pending_weights: None,
            nan_logits: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Runs one full training iteration on this rank's token shard.
    ///
    /// `x_local` is `T_loc × d_model`; `target_local` the regression target
    /// of the same shape. All ranks must call collectively with equal
    /// `T_loc`.
    pub fn iteration(
        &mut self,
        ctx: &mut RankCtx,
        x_local: &Matrix,
        target_local: &Matrix,
    ) -> Result<IterStats, CommError> {
        assert_eq!(x_local.cols(), self.cfg.d_model, "input width mismatch");
        assert_eq!(
            (x_local.rows(), x_local.cols()),
            (target_local.rows(), target_local.cols()),
            "target shape mismatch"
        );
        let e = self.cfg.expert_classes;
        let n = self.view.size();
        // Collectives run over the survivor group; on the full view this is
        // exactly the registry's world group. Ring order is group-index
        // (logical) order, so a shrunk world reproduces the same math.
        let world = self.view.group();
        let t_loc = x_local.rows();
        let tele = self.telemetry.clone();
        // Every message of this iteration lives in one structured tag
        // space: (layer | iteration | phase | entity | src) with exclusive
        // bit fields, so no two phases can alias on the wire.
        let tags = TagSpace::new(self.cfg.layer_id, self.iteration);

        // The iteration's ordering constraints as an explicit task graph,
        // enforced live in both modes: completing a task before its
        // dependencies panics. This is what lets the overlapped schedule
        // move work around without silently crossing a fence — routing and
        // the popularity sync read neither slots nor placement, so the
        // previous iteration's weight scatter may land under them, but the
        // fence MUST close before dispatch touches either.
        let mut graph = TaskGraph::new();
        let t_route = graph.task("route", &[]);
        let t_pop = graph.task("popularity_sync", &[t_route]);
        let t_fence = graph.task("weight_fence", &[]);
        let t_dispatch = graph.task("dispatch", &[t_route, t_fence]);
        let t_forward = graph.task("expert_forward", &[t_dispatch]);
        let t_combine = graph.task("combine", &[t_forward]);
        let t_grad_dispatch = graph.task("grad_dispatch", &[t_combine]);
        let t_grad_issue = graph.task("grad_collect_issue", &[t_grad_dispatch]);
        let t_backward = graph.task("backward", &[t_grad_dispatch]);
        let t_grad_sync = graph.task("grad_sync", &[t_backward]);
        let t_grad_serve = graph.task("grad_serve", &[t_grad_sync, t_grad_issue]);
        let t_step = graph.task("adam_step", &[t_grad_issue, t_grad_serve]);
        let t_rebalance = graph.task("rebalance", &[t_pop, t_step]);
        let t_weight_issue = graph.task("weight_issue", &[t_rebalance, t_step]);
        let t_advisory = graph.task("advisory_sync", &[t_weight_issue]);

        // ---- Step 1: route locally, aggregate popularity globally. ----
        let routing_span = tele.span(Phase::Routing);
        let logits = x_local.matmul(&self.router_w);
        let probs = softmax_rows(&logits);
        let mut assignment = Vec::with_capacity(t_loc);
        let mut gates = Vec::with_capacity(t_loc);
        let mut popularity = vec![0u64; e];
        for t in 0..t_loc {
            let row = probs.row(t);
            // NaN-last argmax: a NaN probability (softmax of an inf/NaN
            // logit) must not panic the iteration — it loses to every
            // finite entry and is counted into the `router.nan_logits`
            // gauge so the numeric trouble upstream stays loud.
            self.nan_logits += row.iter().filter(|p| p.is_nan()).count() as u64;
            let (best, &p) = row
                .iter()
                .enumerate()
                .max_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => a.1.partial_cmp(b.1).expect("both finite"),
                })
                .expect("at least one class");
            assignment.push(best);
            gates.push(p);
            popularity[best] += 1;
        }
        drop(routing_span);
        graph.complete(t_route);
        let mut degraded = false;
        {
            let _span = tele.span(Phase::PopularityAllReduce);
            match ctx.allreduce_u64_sum(
                &world,
                tags.phase_tag(WirePhase::PopularitySync),
                &mut popularity,
            ) {
                Ok(()) => self.metadata.record(0, popularity.clone()),
                Err(e) if Self::is_degradable(&e) => {
                    // Survive the starved all-reduce: the buffer may hold a
                    // partial aggregate, so restore the last *global*
                    // popularity as a consistent stale signal (and leave
                    // the metadata store untouched). Dispatch itself only
                    // needs the local routing + the current placement, so
                    // training proceeds.
                    degraded = true;
                    if let Some(prev) = self.metadata.latest(0) {
                        popularity.copy_from_slice(prev);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        graph.complete(t_pop);

        // ---- Hard fence: land the previous iteration's weight scatter. ----
        // In overlap mode the scatter issued at the end of iteration i−1
        // completed its transfers under the routing + popularity compute
        // above; its slot writes and placement switch happen here, strictly
        // before dispatch reads either. Sequential mode never has anything
        // in flight and falls straight through.
        let fence_stats = self.complete_pending_weights(ctx)?;
        graph.complete(t_fence);

        // ---- Step 2: capacity + replica load balancing + dispatch. ----
        let dispatch_span = tele.span(Phase::Dispatch);
        let replicas = self.placement.replica_counts();
        let (kept, kept_slot, taken) = assign_token_slots(
            &assignment,
            &self.placement,
            self.cfg.slot_capacity,
            self.lrank,
            self.lrank * t_loc,
        );
        let survived_local = kept.len();

        // Build per-destination buffers: token rows + slot metadata.
        let s = self.cfg.slots_per_rank;
        let mut row_bufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        let mut meta_bufs: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, &t) in kept.iter().enumerate() {
            let slot = kept_slot[i];
            let dest = slot / s;
            row_bufs[dest].extend_from_slice(x_local.row(t));
            meta_bufs[dest].push(slot as u64);
        }
        let in_rows =
            ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::DispatchRows), row_bufs)?;
        let in_meta =
            ctx.alltoallv_u64(&world, tags.phase_tag(WirePhase::DispatchMeta), meta_bufs)?;

        // Assemble per-slot inputs; remember (src, j) → (slot, row).
        let d = self.cfg.d_model;
        let mut slot_inputs: Vec<Vec<f32>> = vec![Vec::new(); s];
        let mut routing_map: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for src in 0..n {
            for (j, &slot_id) in in_meta[src].iter().enumerate() {
                let local_slot = slot_id as usize - self.lrank * s;
                let row = slot_inputs[local_slot].len() / d;
                slot_inputs[local_slot].extend_from_slice(&in_rows[src][j * d..(j + 1) * d]);
                routing_map[src].push((local_slot, row));
            }
        }
        drop(dispatch_span);
        graph.complete(t_dispatch);

        // ---- Step 3: expert forward + combine. ----
        let ffn_span = tele.span(Phase::ExpertFfn);
        let slot_outputs: Vec<Matrix> = self
            .slots
            .iter_mut()
            .zip(&slot_inputs)
            .map(|(expert, flat)| {
                if flat.is_empty() {
                    Matrix::zeros(0, d)
                } else {
                    expert.forward(&Matrix::from_vec(flat.len() / d, d, flat.clone()))
                }
            })
            .collect();
        drop(ffn_span);
        graph.complete(t_forward);

        // Return outputs in each source's original send order.
        let combine_span = tele.span(Phase::Combine);
        let mut back_bufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        for src in 0..n {
            for &(slot, row) in &routing_map[src] {
                back_bufs[src].extend_from_slice(slot_outputs[slot].row(row));
            }
        }
        let returned =
            ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::CombineReturn), back_bufs)?;

        // Combine: y[t] = gate_t · expert(x_t) for kept tokens; dropped
        // tokens contribute zero (residual semantics live outside).
        let mut y = Matrix::zeros(t_loc, d);
        let mut cursor = vec![0usize; n];
        for (i, &t) in kept.iter().enumerate() {
            let dest = kept_slot[i] / s;
            let j = cursor[dest];
            cursor[dest] += 1;
            let row = &returned[dest][j * d..(j + 1) * d];
            let g = gates[t];
            for (c, &v) in row.iter().enumerate() {
                y[(t, c)] += g * v;
            }
        }

        // ---- Loss: global-mean squared error. ----
        // The backward pass only needs the *local* dy — the loss scalar is
        // purely advisory — so its all-reduce is deferred into the single
        // trailing advisory exchange (with the stats counts) instead of
        // barriering here mid-step.
        let t_global = (t_loc * n) as f32;
        let mut dy = y.clone();
        dy.axpy(-1.0, target_local);
        let local_sq: f32 = dy.as_slice().iter().map(|v| v * v).sum();
        // dLoss/dy = 2 (y - target) / (T_global · d) for the mean of
        // squares — the finite-difference probe in the tests pins the
        // factor 2 the loss/gradient pair needs to stay consistent.
        dy.scale(2.0 / (t_global * d as f32));
        drop(combine_span);
        graph.complete(t_combine);

        // ---- Step 4: backward. Send gated upstream grads to the slots. ----
        let grad_dispatch_span = tele.span(Phase::GradComm);
        let mut gbufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        for (i, &t) in kept.iter().enumerate() {
            let dest = kept_slot[i] / s;
            let g = gates[t];
            gbufs[dest].extend(dy.row(t).iter().map(|&v| v * g));
        }
        let in_grads = ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::GradReturn), gbufs)?;
        // Scatter into per-slot upstream matrices using the same map.
        let mut slot_dys: Vec<Vec<f32>> =
            slot_inputs.iter().map(|f| vec![0.0f32; f.len()]).collect();
        for src in 0..n {
            for (j, &(slot, row)) in routing_map[src].iter().enumerate() {
                slot_dys[slot][row * d..(row + 1) * d]
                    .copy_from_slice(&in_grads[src][j * d..(j + 1) * d]);
            }
        }
        drop(grad_dispatch_span);
        graph.complete(t_grad_dispatch);

        // ---- Steps 3–7: backward, §4.1 grad all-reduce, Algorithm-2 grad
        // collection, Adam step. Two schedules over the same halves:
        //
        // Sequential: backward all slots → grad-sync all classes → collect
        // all shards → step all shards.
        //
        // Overlapped: the collection receives are posted *first*, then per
        // hosted class: backward its slots → grad-sync it → serve its shard
        // sends → opportunistically take-and-step any class whose shard has
        // already landed. The wire transfers for class c thus ride under
        // the backward GEMMs of the classes after it; only shards still
        // outstanding when the GEMMs run out are waited on (the exposed
        // remainder, timed below).
        //
        // Bit-exact across both: the shard values are produced by the same
        // sends/receives under the same tags, per-class Adam steps touch
        // disjoint state (any completion order is the same math), and the
        // per-class backward partitions exactly the slot set the sequential
        // loop walks.
        let mut grad_stats = OverlapStats::default();
        let weight_shards: Vec<Vec<f32>> = if self.overlap {
            let mut pending = self.optimizer.collect_grads_begin(ctx, &self.placement, tags);
            graph.complete(t_grad_issue);
            let mut shards: Vec<Option<Vec<f32>>> = vec![None; e];
            for (class, locals) in self.placement.classes_on_rank(self.lrank) {
                {
                    let _span = tele.span(Phase::ExpertFfn);
                    for &local in &locals {
                        let expert = &mut self.slots[local];
                        expert.zero_grad();
                        if !slot_dys[local].is_empty() {
                            let rows = slot_dys[local].len() / d;
                            let _ = expert.backward(&Matrix::from_vec(
                                rows,
                                d,
                                slot_dys[local].clone(),
                            ));
                        }
                    }
                }
                let mut tensors: Vec<Vec<f32>> =
                    locals.iter().map(|&l| self.slots[l].flat_grads()).collect();
                let (start, len) = self.placement.host_range(class);
                let group = self.view.subgroup(start, len);
                {
                    let _span = tele.span(Phase::GradComm);
                    ctx.expert_allreduce(
                        &group,
                        tags.tag(WirePhase::GradSync, class, 0),
                        &mut tensors,
                        self.placement.replica_counts()[class],
                        ReduceMode::Sum,
                    )?;
                }
                self.optimizer.collect_grads_serve_class(
                    ctx,
                    &mut pending,
                    &self.placement,
                    class,
                    &tensors[0],
                    tags,
                )?;
                // Opportunistic sweep: step every class whose shard has
                // already landed — hidden behind the remaining backward
                // GEMMs and grad-syncs.
                for (c, shard) in shards.iter_mut().enumerate() {
                    if shard.is_none() {
                        if let Some(g) =
                            self.optimizer.collect_grads_try_take(ctx, &mut pending, c)?
                        {
                            grad_stats.hidden_bytes += g.len() as u64 * 4;
                            *shard = Some(self.optimizer.step_class(c, &g));
                        }
                    }
                }
            }
            graph.complete(t_backward);
            graph.complete(t_grad_sync);
            graph.complete(t_grad_serve);
            // Whatever is still outstanding is exposed comm: wait it out.
            for (c, shard) in shards.iter_mut().enumerate() {
                if shard.is_none() {
                    let t0 = Instant::now();
                    let g = self.optimizer.collect_grads_wait_take(ctx, &mut pending, c)?;
                    grad_stats.exposed_ns += t0.elapsed().as_nanos() as u64;
                    grad_stats.exposed_bytes += g.len() as u64 * 4;
                    *shard = Some(self.optimizer.step_class(c, &g));
                }
            }
            self.optimizer.collect_grads_finish(ctx, pending);
            graph.complete(t_step);
            shards.into_iter().map(|s| s.expect("every class stepped")).collect()
        } else {
            {
                let _span = tele.span(Phase::ExpertFfn);
                for (local, expert) in self.slots.iter_mut().enumerate() {
                    expert.zero_grad();
                    if !slot_dys[local].is_empty() {
                        let rows = slot_dys[local].len() / d;
                        let _ =
                            expert.backward(&Matrix::from_vec(rows, d, slot_dys[local].clone()));
                    }
                }
            }
            graph.complete(t_backward);

            // §4.1: intra+inter rank gradient all-reduce per class.
            let gradsync_span = tele.span(Phase::GradComm);
            let mut class_grads: Vec<Option<Vec<f32>>> = vec![None; e];
            for (class, locals) in self.placement.classes_on_rank(self.lrank) {
                let mut tensors: Vec<Vec<f32>> =
                    locals.iter().map(|&l| self.slots[l].flat_grads()).collect();
                // The host range is logical; the view maps it onto the
                // (possibly non-contiguous) surviving physical ranks.
                let (start, len) = self.placement.host_range(class);
                let group = self.view.subgroup(start, len);
                ctx.expert_allreduce(
                    &group,
                    tags.tag(WirePhase::GradSync, class, 0),
                    &mut tensors,
                    self.placement.replica_counts()[class],
                    ReduceMode::Sum,
                )?;
                class_grads[class] = Some(tensors.swap_remove(0));
            }
            drop(gradsync_span);
            graph.complete(t_grad_sync);

            // (The optimizer times its own GradComm/OptimizerStep spans.)
            graph.complete(t_grad_issue);
            let grad_shards =
                self.optimizer.collect_grads(ctx, &self.placement, &class_grads, tags)?;
            graph.complete(t_grad_serve);
            let shards = self.optimizer.step(&grad_shards);
            graph.complete(t_step);
            shards
        };

        let rebalance_span = tele.span(Phase::Rebalance);
        let (next_placement, placement_churn) = if degraded {
            // Degraded mode: every rank observed the starved popularity
            // sync (the gather-root summed nobody's contribution or the
            // broadcast never arrived), so every rank skips the rebalance
            // the same way and keeps the previous placement — stale but
            // correct per §3.4. If ranks ever *disagreed*, the sized
            // weight-distribute receives of the diverging placements would
            // starve and escalate loudly; stale placement can never cause
            // silent divergence.
            (self.placement.clone(), 0)
        } else {
            let next_counts = compute_placement(
                self.metadata.latest(0).expect("recorded this iteration"),
                self.cfg.total_slots(n),
            );
            let p = ExpertPlacement::from_counts(&next_counts, self.cfg.slots_per_rank);
            let churn = self.placement.diff_slots(&p);
            (p, churn)
        };
        drop(rebalance_span);
        graph.complete(t_rebalance);

        // ---- Step 8: issue the weight scatter under the new placement. ----
        // Overlap mode leaves it in flight across the iteration boundary —
        // the receives complete under iteration i+1's routing + popularity
        // compute and the fence at the top of iteration i+1 installs the
        // slots/placement. Sequential mode fences immediately (the blocking
        // `distribute_weights` is exactly begin + finish, so the bytes on
        // the wire are identical).
        let pending_w =
            self.optimizer.distribute_weights_begin(ctx, &next_placement, &weight_shards, tags)?;
        graph.complete(t_weight_issue);
        if self.overlap {
            self.pending_weights =
                Some(PendingWeights { state: pending_w, placement: next_placement });
        } else {
            let (new_weights, _) = self.optimizer.distribute_weights_finish(ctx, pending_w)?;
            {
                let _span = tele.span(Phase::WeightComm);
                for (local, weights) in new_weights.into_iter().enumerate() {
                    self.slots[local].load_flat(&weights);
                }
            }
            self.placement = next_placement;
        }
        self.iteration += 1;

        // ---- Single deferred advisory exchange (loss + stats). ----
        // One f32 ring all-reduce carries [Σdy², survived, dropped,
        // kept_0..kept_E) — the old mid-step LossSync barrier and trailing
        // StatsSync are folded into it, and in overlap mode its ring gives
        // the in-flight weight scatter one more compute-free window to
        // drain under. The counts are small integers, exact in f32. The
        // loss element is index 0 of chunk 0, so its per-element summation
        // order is identical to the old 1-element LossSync buffer — the
        // reported loss is bit-stable across the fold and across modes.
        let mut advisory = vec![local_sq, survived_local as f32, (t_loc - survived_local) as f32];
        advisory.extend(taken.iter().map(|&k| k as f32));
        let local_advisory = advisory.clone();
        match ctx.allreduce_sum(&world, tags.phase_tag(WirePhase::LossSync), &mut advisory) {
            Ok(()) => {}
            Err(e) if Self::is_degradable(&e) || matches!(e, CommError::PeerGone { .. }) => {
                // Loss and stats are advisory and every training-state
                // mutation of this iteration is already committed, so fall
                // back to the rank-local values rather than aborting a
                // fully-trained iteration — even for a dead peer: the next
                // iteration's mandatory collectives (popularity sync, the
                // weight fence) surface a real death loudly.
                degraded = true;
                advisory = local_advisory;
            }
            Err(e) => return Err(e),
        }
        graph.complete(t_advisory);
        let loss = advisory[0] / (t_global * d as f32);
        if degraded {
            self.degraded_iterations += 1;
        }
        debug_assert!(graph.all_complete(), "iteration left tasks open: {:?}", graph.outstanding());

        // Wire-protocol health: fenced/stashed/timed-out messages flow into
        // the telemetry registry next to the phase timings.
        if tele.is_enabled() {
            let ps = ctx.protocol_stats();
            tele.gauge("protocol_fenced_messages").set(ps.fenced_messages as f64);
            tele.gauge("protocol_stash_peak").set(ps.stash_peak as f64);
            tele.gauge("protocol_recv_timeouts").set(ps.recv_timeouts as f64);
            tele.gauge("protocol_retries").set(ps.retries as f64);
            tele.gauge("protocol_duplicates_dropped").set(ps.duplicates_dropped as f64);
            tele.gauge("degraded_iterations").set(self.degraded_iterations as f64);
            tele.gauge("router.nan_logits").set(self.nan_logits as f64);
            if degraded {
                tele.counter("degraded_iterations_total").inc();
            }
            // Overlap accounting: bytes whose transfer completed under
            // compute (hidden) vs bytes the schedule had to block on
            // (exposed), plus the blocked wall-clock. The fence stats
            // belong to the scatter issued *last* iteration, landed here.
            let mut overlap_stats = grad_stats;
            if let Some(fs) = fence_stats {
                overlap_stats.absorb(fs);
            }
            tele.gauge("overlap_hidden_bytes").set(overlap_stats.hidden_bytes as f64);
            tele.gauge("overlap_exposed_bytes").set(overlap_stats.exposed_bytes as f64);
            tele.gauge("overlap_exposed_ms").set(overlap_stats.exposed_ns as f64 / 1e6);
        }

        Ok(IterStats {
            loss,
            popularity,
            survived: advisory[1] as usize,
            dropped: advisory[2] as usize,
            kept_per_class: advisory[3..].iter().map(|&k| k as u64).collect(),
            replicas,
            placement_churn,
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_collectives::{Cluster, ClusterSpec};

    fn cfg() -> EngineConfig {
        EngineConfig {
            d_model: 8,
            d_ff: 16,
            expert_classes: 4,
            slots_per_rank: 2,
            slot_capacity: 1_000_000, // no drops: exact cross-checks
            adam: AdamConfig::default(),
            seed: 31,
            layer_id: 0,
        }
    }

    fn token_matrix(rank: usize, t_loc: usize, d: usize) -> Matrix {
        Matrix::from_fn(t_loc, d, |r, c| (((rank * t_loc + r) * d + c) as f32 * 0.137).sin())
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let nodes = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, cfg());
            let x = token_matrix(ctx.rank(), 8, 8);
            let target = Matrix::zeros(8, 8); // drive outputs to zero
            let mut losses = Vec::new();
            for _ in 0..10 {
                losses.push(engine.iteration(ctx, &x, &target).unwrap().loss);
            }
            losses
        });
        for (rank, losses) in results.iter().enumerate() {
            assert!(
                losses.last().unwrap() < &(losses[0] * 0.8),
                "rank {rank}: loss must fall, got {losses:?}"
            );
        }
    }

    #[test]
    fn all_ranks_agree_on_stats_and_placement() {
        let nodes = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, cfg());
            let x = token_matrix(ctx.rank(), 6, 8);
            let target = token_matrix(ctx.rank() + 100, 6, 8);
            let stats = engine.iteration(ctx, &x, &target).unwrap();
            engine.drain(ctx).unwrap();
            (stats.popularity, stats.loss, engine.placement.replica_counts())
        });
        for r in 1..nodes {
            assert_eq!(results[0].0, results[r].0, "popularity must be global");
            assert!((results[0].1 - results[r].1).abs() < 1e-6, "loss must be global");
            assert_eq!(results[0].2, results[r].2, "placement must be deterministic");
        }
    }

    #[test]
    fn placement_follows_popularity() {
        let nodes = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, cfg());
            let x = token_matrix(ctx.rank(), 16, 8);
            let target = Matrix::zeros(16, 8);
            let stats = engine.iteration(ctx, &x, &target).unwrap();
            // Under SYMI_OVERLAP=on the rebalanced placement is still in
            // flight after iteration(); the fence lands it.
            engine.drain(ctx).unwrap();
            let hottest = (0..4).max_by_key(|&c| stats.popularity[c]).expect("non-empty");
            let counts = engine.placement.replica_counts();
            (hottest, counts)
        });
        let (hottest, counts) = &results[0];
        let max_class = (0..4).max_by_key(|&c| counts[c]).unwrap();
        assert_eq!(
            *hottest, max_class,
            "the most popular class must get the most replicas: {counts:?}"
        );
    }

    #[test]
    fn replicas_of_a_class_hold_identical_weights() {
        let nodes = 2;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, cfg());
            let x = token_matrix(ctx.rank(), 8, 8);
            let target = Matrix::zeros(8, 8);
            let _ = engine.iteration(ctx, &x, &target).unwrap();
            engine.drain(ctx).unwrap();
            // Report (class, weights) of each local slot.
            let s = engine.placement.slots_per_rank();
            (0..s)
                .map(|l| {
                    let slot = ctx.rank() * s + l;
                    (engine.placement.class_of_slot(slot), engine.slot_weights(l))
                })
                .collect::<Vec<_>>()
        });
        let mut by_class: std::collections::HashMap<usize, Vec<f32>> =
            std::collections::HashMap::new();
        for per_rank in &results {
            for (class, weights) in per_rank {
                match by_class.get(class) {
                    None => {
                        by_class.insert(*class, weights.clone());
                    }
                    Some(reference) => {
                        assert_eq!(
                            reference, weights,
                            "all replicas of class {class} must match bit-for-bit"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_slot_capacity_is_enforced_where_the_old_quota_oversubscribed() {
        // Two classes, two replica slots each, across two ranks. Interleaved
        // routing puts every class-0 token at an even global index, so the
        // old `gid % replicas` router piled all of them onto one slot while
        // its sibling idled — the per-class quota never noticed.
        let nodes = 2;
        let t_loc = 16;
        let cap = 3;
        let placement = ExpertPlacement::uniform(2, nodes, 2);
        let assignment: Vec<usize> = (0..t_loc).map(|t| t % 2).collect();

        // Old scheme (regression fixture): per-class quota + modulo router.
        let replicas = placement.replica_counts();
        let mut old_load = vec![0usize; placement.total_slots()];
        for rank in 0..nodes {
            let quota: Vec<usize> = (0..2)
                .map(|c| {
                    let class_cap = cap * replicas[c];
                    class_cap / nodes + usize::from(rank < class_cap % nodes)
                })
                .collect();
            let mut taken = [0usize; 2];
            for (t, &class) in assignment.iter().enumerate() {
                if taken[class] >= quota[class] {
                    continue;
                }
                let class_slots = placement.slots_of_class(class);
                let gid = rank * t_loc + t;
                old_load[class_slots[gid % class_slots.len()]] += 1;
                taken[class] += 1;
            }
        }
        assert!(
            old_load.iter().any(|&l| l > cap),
            "fixture must reproduce the oversubscription: {old_load:?}"
        );

        // New scheme: no slot exceeds its capacity, and the probing fills
        // the sibling replica the old router left idle.
        let mut new_load = vec![0usize; placement.total_slots()];
        let mut new_kept = 0usize;
        for rank in 0..nodes {
            let (kept, kept_slot, _) =
                assign_token_slots(&assignment, &placement, cap, rank, rank * t_loc);
            new_kept += kept.len();
            for &slot in &kept_slot {
                new_load[slot] += 1;
            }
        }
        for (slot, &load) in new_load.iter().enumerate() {
            assert!(load <= cap, "slot {slot} over capacity: {load} > {cap}, {new_load:?}");
        }
        assert_eq!(
            new_kept,
            placement.total_slots() * cap,
            "all slots should fill exactly under adversarial demand: {new_load:?}"
        );
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        // Single rank, single class, single slot: gate = softmax over one
        // logit = 1 exactly, so loss(params) = Σ(ffn(x) − target)² / (T·d)
        // and the engine's backward must produce d loss / d params — pinning
        // the factor 2 in dLoss/dy = 2(y − target)/(T·d).
        let probe = EngineConfig {
            d_model: 4,
            d_ff: 8,
            expert_classes: 1,
            slots_per_rank: 1,
            slot_capacity: 1_000_000,
            adam: AdamConfig::default(),
            seed: 77,
            layer_id: 0,
        };
        let t_loc = 5;
        let (mut results, _) = Cluster::run(ClusterSpec::flat(1), move |ctx| {
            let mut engine = MoeLayerEngine::new(0, 1, probe);
            let x = token_matrix(0, t_loc, probe.d_model);
            let target = token_matrix(3, t_loc, probe.d_model);
            let stats = engine.iteration(ctx, &x, &target).unwrap();
            (stats.loss, engine.slot_grads(0))
        });
        let (loss, analytic) = results.remove(0);

        let x = token_matrix(0, t_loc, probe.d_model);
        let target = token_matrix(3, t_loc, probe.d_model);
        let loss_of = |params: &[f32]| -> f64 {
            let mut ffn = ExpertFfn::new(probe.d_model, probe.d_ff, 0);
            ffn.load_flat(params);
            let y = ffn.forward(&x);
            let sq: f64 = y
                .as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum();
            sq / (t_loc * probe.d_model) as f64
        };

        // The canonical initial class weights the engine built its slot from.
        let params0 = ExpertFfn::new(probe.d_model, probe.d_ff, probe.seed ^ 0xe0).flat_params();
        assert!(
            (f64::from(loss) - loss_of(&params0)).abs() < 1e-5,
            "reported loss disagrees with direct evaluation"
        );

        let eps = 1e-2f32;
        for (i, &g) in analytic.iter().enumerate() {
            let mut p = params0.clone();
            p[i] = params0[i] + eps;
            let up = loss_of(&p);
            p[i] = params0[i] - eps;
            let down = loss_of(&p);
            let fd = ((up - down) / (2.0 * f64::from(eps))) as f32;
            assert!(
                (g - fd).abs() <= 1e-3 + 0.05 * fd.abs(),
                "param {i}: analytic grad {g} vs finite difference {fd}"
            );
        }
    }

    #[test]
    fn nan_logits_do_not_panic_the_routing_argmax() {
        // A NaN token row makes every router probability NaN (softmax of
        // NaN logits); before the NaN-last ordering this panicked inside
        // `partial_cmp(..).expect("finite probs")`. Now the iteration
        // completes and the gauge counts what it saw.
        let nodes = 2;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, cfg());
            let mut x = token_matrix(ctx.rank(), 4, 8);
            if ctx.rank() == 0 {
                x[(2, 3)] = f32::NAN;
            }
            let target = Matrix::zeros(4, 8);
            let stats = engine.iteration(ctx, &x, &target).expect("NaN must not abort");
            (stats.popularity.iter().sum::<u64>(), engine.nan_logits())
        });
        assert_eq!(results[0].0, 8, "every token still routes somewhere");
        assert_eq!(results[0].1, 4, "all four probs of rank 0's NaN row are NaN");
        assert_eq!(results[1].1, 0, "rank 1 saw only finite probs");
    }

    #[test]
    fn capacity_quota_drops_excess_tokens() {
        let nodes = 2;
        let tight = EngineConfig { slot_capacity: 1, ..cfg() };
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), nodes, tight);
            let x = token_matrix(ctx.rank(), 16, 8);
            let target = Matrix::zeros(16, 8);
            engine.iteration(ctx, &x, &target).unwrap()
        });
        let stats = &results[0];
        assert!(stats.dropped > 0, "capacity 1/slot must drop tokens");
        assert_eq!(stats.survived + stats.dropped, 32);
        // Survivors fit inside the total capacity (4 slots/rank... 4 classes
        // × replicas × 1 token each).
        assert!(stats.survived <= tight.total_slots(nodes));
    }
}
