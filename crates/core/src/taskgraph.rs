//! A minimal explicit task graph for the overlap scheduler.
//!
//! The overlapped iteration in [`crate::engine`] is no longer a straight
//! line — weight distribution for iteration *i* completes during iteration
//! *i+1*, gradient collection for one expert class overlaps the backward
//! GEMMs of another, and the Adam step for a shard fires as soon as its
//! gradients land. The ordering constraints that keep all of this
//! bit-exact are easy to state ("slots must not be written before the
//! weight fence", "a class may not step before its gradients are
//! complete") but easy to silently violate in a refactor.
//!
//! [`TaskGraph`] makes those constraints *executable*: the engine declares
//! the iteration's tasks and their dependencies up front, then marks each
//! task complete at the moment the corresponding work actually happens.
//! Completing a task whose dependencies are not all complete panics
//! immediately, in both the sequential and the overlapped mode — the graph
//! is a live structural assertion, not documentation. It costs a few
//! `Vec<bool>` reads per iteration, which is noise next to a GEMM.

/// Opaque handle to one declared task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskId(usize);

struct Task {
    name: &'static str,
    deps: Vec<TaskId>,
    done: bool,
}

/// A dependency DAG over the phases of one iteration.
///
/// Tasks are declared with [`TaskGraph::task`]; dependencies must already
/// exist when a task is declared, which makes cycles unrepresentable.
/// [`TaskGraph::complete`] enforces the declared order at runtime.
#[derive(Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a task that may only complete after every task in `deps`.
    pub fn task(&mut self, name: &'static str, deps: &[TaskId]) -> TaskId {
        for dep in deps {
            assert!(dep.0 < self.tasks.len(), "dependency declared after dependent");
        }
        self.tasks.push(Task { name, deps: deps.to_vec(), done: false });
        TaskId(self.tasks.len() - 1)
    }

    /// Mark `id` complete. Panics if any declared dependency has not
    /// completed — the overlap scheduler violated its own fences.
    pub fn complete(&mut self, id: TaskId) {
        let deps = std::mem::take(&mut self.tasks[id.0].deps);
        for dep in &deps {
            assert!(
                self.tasks[dep.0].done,
                "task '{}' completed before its dependency '{}'",
                self.tasks[id.0].name, self.tasks[dep.0].name,
            );
        }
        self.tasks[id.0].deps = deps;
        assert!(!self.tasks[id.0].done, "task '{}' completed twice", self.tasks[id.0].name);
        self.tasks[id.0].done = true;
    }

    /// Whether a specific task has completed.
    pub fn is_complete(&self, id: TaskId) -> bool {
        self.tasks[id.0].done
    }

    /// Whether every declared task has completed — asserted at the end of
    /// each iteration so a skipped phase is loud.
    pub fn all_complete(&self) -> bool {
        self.tasks.iter().all(|t| t.done)
    }

    /// Names of incomplete tasks, for diagnostics.
    pub fn outstanding(&self) -> Vec<&'static str> {
        self.tasks.iter().filter(|t| !t.done).map(|t| t.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_completion_succeeds() {
        let mut g = TaskGraph::new();
        let a = g.task("route", &[]);
        let b = g.task("dispatch", &[a]);
        let c = g.task("ffn", &[b]);
        g.complete(a);
        g.complete(b);
        assert!(!g.all_complete());
        assert_eq!(g.outstanding(), vec!["ffn"]);
        g.complete(c);
        assert!(g.all_complete());
    }

    #[test]
    fn diamond_allows_any_interleaving_of_independent_tasks() {
        let mut g = TaskGraph::new();
        let root = g.task("root", &[]);
        let left = g.task("left", &[root]);
        let right = g.task("right", &[root]);
        let join = g.task("join", &[left, right]);
        g.complete(root);
        // Independent branches may finish in either order.
        g.complete(right);
        g.complete(left);
        g.complete(join);
        assert!(g.all_complete());
    }

    #[test]
    #[should_panic(expected = "before its dependency")]
    fn out_of_order_completion_panics() {
        let mut g = TaskGraph::new();
        let a = g.task("weight_fence", &[]);
        let b = g.task("slot_write", &[a]);
        g.complete(b);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut g = TaskGraph::new();
        let a = g.task("step", &[]);
        g.complete(a);
        g.complete(a);
    }
}
