//! # symi — Efficient MoE Training via Model and Optimizer State Decoupling
//!
//! This crate implements the paper's primary contribution: **per-iteration
//! adaptive expert replication with zero extra data movement**, achieved by
//! decoupling each expert's parameters (fp16, replicated non-uniformly on
//! the accelerators, re-placed every iteration) from its optimizer state
//! (fp32 Adam state, statically and *uniformly* sharded across all `N`
//! nodes' host memory).
//!
//! Components, mapping one-to-one onto the paper's design (§3–§4):
//!
//! - [`scheduler`] — the Expert Placement Scheduler (Algorithm 1):
//!   popularity-proportional replica counts with a one-replica floor,
//!   floor-and-correct rounding, and contiguous slot assignment; plus
//!   [`scheduler::SymiPolicy`], the previous-iteration-popularity policy
//!   pluggable into any trainer.
//! - [`metadata`] — the Layer Metadata Store holding the globally
//!   consistent per-iteration popularity counters.
//! - [`placement`] — the expert-placement data model: slot↔class maps,
//!   per-class host-rank ranges, communicator-group handles.
//! - [`optimizer`] — the SYMI Optimizer: per-node [`symi_tensor::AdamShard`]s
//!   covering a uniform `1/N` slice of *every* expert, the
//!   gradient-collection schedule of Algorithm 2 (locality-first,
//!   round-robin balanced), and the weight-materialization scatter that
//!   realizes next iteration's placement using only the weight-update
//!   traffic that static systems already pay (§3.3).
//! - [`engine`] — the distributed per-rank MoE-layer engine tying it all
//!   together over `symi-collectives`: route → popularity all-reduce →
//!   dispatch (all-to-all) → expert compute → combine → backward →
//!   intra+inter-rank gradient all-reduce (§4.1) → grad collection →
//!   sharded Adam step → weight scatter under the new placement.

pub mod engine;
pub mod metadata;
pub mod optimizer;
pub mod placement;
pub mod policies;
pub mod scheduler;
pub mod taskgraph;

pub use engine::{EngineConfig, EngineSnapshot, JoinStats, MoeLayerEngine, RecoveryStats};
pub use metadata::LayerMetadataStore;
pub use optimizer::{
    GradCollectPending, ReshardReport, ShardState, SymiOptimizer, WeightDistributePending,
};
pub use placement::ExpertPlacement;
pub use policies::{EmaPolicy, TracePolicy, WindowMaxPolicy};
pub use scheduler::{compute_placement, supports_world, valid_replica_counts, SymiPolicy};
pub use taskgraph::{TaskGraph, TaskId};
