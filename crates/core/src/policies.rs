//! Extended placement policies (§6: "the dynamic replication policy in
//! SYMI is flexible — the expert scheduler may incorporate prediction,
//! historical statistics, or even disregard popularity").
//!
//! All of these produce replica counts through the same Algorithm 1
//! machinery; they differ only in the popularity *estimate* they feed it:
//!
//! - [`SymiPolicy`](crate::scheduler::SymiPolicy) (in `scheduler`):
//!   previous iteration, the paper's choice;
//! - [`EmaPolicy`]: exponential moving average — smoother, trades lag for
//!   noise rejection;
//! - [`WindowMaxPolicy`]: per-class peak over a trailing window —
//!   conservative over-provisioning for spiky experts;
//! - [`evaluate_policy_on_trace`]: an offline evaluator that replays a
//!   recorded popularity trace under any of these (plus the static and
//!   same-iteration-oracle bounds) and scores token survival — the
//!   policy-ablation harness.

use crate::scheduler::compute_placement;
use std::collections::HashMap;
use symi_model::PlacementPolicy;
use symi_workload::PopularityTrace;

/// Clamps a caller-supplied EMA weight into `[0, 1]`. Non-finite weights
/// degrade to `1.0` (prev-iteration behaviour) instead of poisoning the
/// accumulators: `EmaPolicy.alpha` is a public field, and the trace
/// evaluator's percent-encoded alpha can exceed 100, so the constructor
/// assert alone cannot keep hostile weights out of the arithmetic.
fn sanitized_alpha(alpha: f64) -> f64 {
    if alpha.is_finite() {
        alpha.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

/// f64 EMA accumulator → u64 popularity: NaN and negatives clamp to zero,
/// overflow saturates. (`as u64` already saturates in Rust, but routing
/// every conversion through one place keeps the clamping policy auditable.)
fn popularity_from_ema(e: f64) -> u64 {
    if e.is_nan() {
        0
    } else {
        e.round().clamp(0.0, u64::MAX as f64) as u64
    }
}

/// EMA update with a self-healing accumulator: a non-finite result (alpha
/// abuse, astronomically large counts) resets to the direct observation
/// rather than sticking at NaN/±inf for the rest of the run.
fn ema_step(state: f64, alpha: f64, p: u64) -> f64 {
    let next = alpha * p as f64 + (1.0 - alpha) * state;
    if next.is_finite() {
        next
    } else {
        p as f64
    }
}

/// EMA-smoothed popularity estimate.
pub struct EmaPolicy {
    pub total_slots: usize,
    /// Weight of the newest observation (1.0 degenerates to SymiPolicy).
    pub alpha: f64,
    state: HashMap<usize, Vec<f64>>,
}

impl EmaPolicy {
    pub fn new(total_slots: usize, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be a weight");
        Self { total_slots, alpha, state: HashMap::new() }
    }
}

impl PlacementPolicy for EmaPolicy {
    fn name(&self) -> &'static str {
        "symi-ema"
    }

    fn next_replicas(&mut self, layer: usize, popularity: &[u64], _iter: u64) -> Vec<usize> {
        let ema = self
            .state
            .entry(layer)
            .or_insert_with(|| popularity.iter().map(|&p| p as f64).collect());
        assert_eq!(ema.len(), popularity.len(), "expert count changed");
        let alpha = sanitized_alpha(self.alpha);
        for (e, &p) in ema.iter_mut().zip(popularity) {
            *e = ema_step(*e, alpha, p);
        }
        let rounded: Vec<u64> = ema.iter().map(|&e| popularity_from_ema(e)).collect();
        compute_placement(&rounded, self.total_slots)
    }

    fn on_world_shrink(&mut self, total_slots: usize) {
        self.total_slots = total_slots;
    }
}

/// Peak-demand estimate over a trailing window.
pub struct WindowMaxPolicy {
    pub total_slots: usize,
    pub window: usize,
    history: HashMap<usize, Vec<Vec<u64>>>,
}

impl WindowMaxPolicy {
    pub fn new(total_slots: usize, window: usize) -> Self {
        assert!(window >= 1, "window must be at least one iteration");
        Self { total_slots, window, history: HashMap::new() }
    }
}

impl PlacementPolicy for WindowMaxPolicy {
    fn name(&self) -> &'static str {
        "symi-windowmax"
    }

    fn next_replicas(&mut self, layer: usize, popularity: &[u64], _iter: u64) -> Vec<usize> {
        let h = self.history.entry(layer).or_default();
        h.push(popularity.to_vec());
        if h.len() > self.window {
            h.remove(0);
        }
        let peak: Vec<u64> =
            (0..popularity.len()).map(|e| h.iter().map(|row| row[e]).max().unwrap_or(0)).collect();
        compute_placement(&peak, self.total_slots)
    }

    fn on_world_shrink(&mut self, total_slots: usize) {
        self.total_slots = total_slots;
    }
}

/// Token survival if class `e` is provisioned `replicas[e]` slots of
/// capacity `slot_capacity` against demand `popularity[e]`.
pub fn survival_for_replicas(popularity: &[u64], replicas: &[usize], slot_capacity: f64) -> f64 {
    assert_eq!(popularity.len(), replicas.len(), "shape mismatch");
    // Saturating for the same reason as `compute_placement`: astronomically
    // large counts must flatten the ratio, not abort the evaluator.
    let total: u64 = popularity.iter().fold(0u64, |acc, &p| acc.saturating_add(p));
    if total == 0 {
        return 1.0;
    }
    let survived: f64 = popularity
        .iter()
        .zip(replicas)
        .map(|(&p, &r)| (p as f64).min(slot_capacity * r as f64))
        .sum();
    survived / total as f64
}

/// Offline policy evaluation modes for [`evaluate_policy_on_trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePolicy {
    /// Uniform static replication.
    Static,
    /// Previous-iteration popularity (the paper's SYMI policy).
    PrevIteration,
    /// EMA with the given alpha (in percent to stay `Eq`-friendly).
    EmaPercent(u8),
    /// Trailing-window max.
    WindowMax(usize),
    /// Same-iteration popularity — the unattainable upper bound (the
    /// placement a system would pick if it could reshuffle *after*
    /// routing, §3.4).
    Oracle,
}

impl TracePolicy {
    pub fn label(&self) -> String {
        match self {
            TracePolicy::Static => "static-uniform".into(),
            TracePolicy::PrevIteration => "prev-iteration (SYMI)".into(),
            TracePolicy::EmaPercent(a) => format!("ema-{:.2}", *a as f64 / 100.0),
            TracePolicy::WindowMax(w) => format!("window-max-{w}"),
            TracePolicy::Oracle => "oracle (same iteration)".into(),
        }
    }
}

/// Replays `trace` under `policy` and returns the mean token survival at
/// the given geometry. Iteration 0 always runs uniform (no history yet).
pub fn evaluate_policy_on_trace(
    trace: &PopularityTrace,
    policy: TracePolicy,
    total_slots: usize,
    slot_capacity: f64,
) -> f64 {
    let e = trace.expert_classes();
    assert!(e > 0, "empty trace");
    let uniform = vec![total_slots / e; e];
    let mut survival_sum = 0.0;
    let mut ema: Vec<f64> = vec![0.0; e];
    let mut window: Vec<Vec<u64>> = Vec::new();

    for t in 0..trace.len() {
        let popularity = &trace.iterations[t];
        let replicas = match policy {
            TracePolicy::Static => uniform.clone(),
            TracePolicy::Oracle => compute_placement(popularity, total_slots),
            TracePolicy::PrevIteration => {
                if t == 0 {
                    uniform.clone()
                } else {
                    compute_placement(&trace.iterations[t - 1], total_slots)
                }
            }
            TracePolicy::EmaPercent(a) => {
                let alpha = sanitized_alpha(a as f64 / 100.0);
                let r = if t == 0 {
                    uniform.clone()
                } else {
                    let rounded: Vec<u64> = ema.iter().map(|&v| popularity_from_ema(v)).collect();
                    compute_placement(&rounded, total_slots)
                };
                for (s, &p) in ema.iter_mut().zip(popularity) {
                    *s = if t == 0 { p as f64 } else { ema_step(*s, alpha, p) };
                }
                r
            }
            TracePolicy::WindowMax(w) => {
                let r = if window.is_empty() {
                    uniform.clone()
                } else {
                    let peak: Vec<u64> = (0..e)
                        .map(|c| window.iter().map(|row| row[c]).max().unwrap_or(0))
                        .collect();
                    compute_placement(&peak, total_slots)
                };
                window.push(popularity.clone());
                if window.len() > w {
                    window.remove(0);
                }
                r
            }
        };
        survival_sum += survival_for_replicas(popularity, &replicas, slot_capacity);
    }
    survival_sum / trace.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_workload::SyntheticTraceConfig;

    fn trace() -> PopularityTrace {
        SyntheticTraceConfig {
            expert_classes: 8,
            iterations: 120,
            tokens_per_iteration: 4096,
            zipf: 1.2,
            drift_sigma: 0.2,
            jolt_prob: 0.05,
            seed: 11,
        }
        .generate()
    }

    const SLOTS: usize = 32;
    const CAP: f64 = 4096.0 / SLOTS as f64;

    #[test]
    fn oracle_dominates_everything() {
        let t = trace();
        let oracle = evaluate_policy_on_trace(&t, TracePolicy::Oracle, SLOTS, CAP);
        for policy in [
            TracePolicy::Static,
            TracePolicy::PrevIteration,
            TracePolicy::EmaPercent(50),
            TracePolicy::WindowMax(5),
        ] {
            let s = evaluate_policy_on_trace(&t, policy, SLOTS, CAP);
            assert!(
                oracle >= s - 1e-9,
                "{} ({s:.4}) must not beat the oracle ({oracle:.4})",
                policy.label()
            );
        }
    }

    #[test]
    fn prev_iteration_beats_static_on_skewed_traces() {
        let t = trace();
        let stat = evaluate_policy_on_trace(&t, TracePolicy::Static, SLOTS, CAP);
        let prev = evaluate_policy_on_trace(&t, TracePolicy::PrevIteration, SLOTS, CAP);
        assert!(prev > stat + 0.02, "prev {prev:.4} vs static {stat:.4}");
    }

    #[test]
    fn prev_iteration_is_near_oracle() {
        // §3.4's claim: the previous iteration is a reliable proxy.
        let t = trace();
        let prev = evaluate_policy_on_trace(&t, TracePolicy::PrevIteration, SLOTS, CAP);
        let oracle = evaluate_policy_on_trace(&t, TracePolicy::Oracle, SLOTS, CAP);
        assert!(oracle - prev < 0.08, "gap to oracle too large: {:.4}", oracle - prev);
    }

    #[test]
    fn ema_with_alpha_one_equals_prev_iteration() {
        let t = trace();
        let prev = evaluate_policy_on_trace(&t, TracePolicy::PrevIteration, SLOTS, CAP);
        let ema = evaluate_policy_on_trace(&t, TracePolicy::EmaPercent(100), SLOTS, CAP);
        assert!((prev - ema).abs() < 1e-9);
    }

    #[test]
    fn live_policies_fill_slots_and_respect_floor() {
        use symi_model::PlacementPolicy;
        let t = trace();
        let mut ema = EmaPolicy::new(SLOTS, 0.4);
        let mut wmax = WindowMaxPolicy::new(SLOTS, 4);
        for (i, popularity) in t.iterations.iter().enumerate().take(20) {
            for r in [
                ema.next_replicas(0, popularity, i as u64),
                wmax.next_replicas(0, popularity, i as u64),
            ] {
                assert_eq!(r.iter().sum::<usize>(), SLOTS);
                assert!(r.iter().all(|&c| c >= 1));
            }
        }
    }

    #[test]
    fn window_max_overprovisions_spiky_experts() {
        // A class that spikes every 3rd iteration: window-max keeps its
        // replicas high between spikes, prev-iteration drops them.
        let mut t = PopularityTrace::new();
        for i in 0..30 {
            let hot = if i % 3 == 0 { 3000u64 } else { 100 };
            t.push(vec![hot, 500, 500, 500]);
        }
        let prev = evaluate_policy_on_trace(&t, TracePolicy::PrevIteration, 16, 4600.0 / 16.0);
        let wmax = evaluate_policy_on_trace(&t, TracePolicy::WindowMax(3), 16, 4600.0 / 16.0);
        assert!(wmax > prev, "window-max {wmax:.4} should beat prev {prev:.4} on spikes");
    }

    #[test]
    fn adversarial_alphas_and_popularity_never_panic() {
        use symi_model::PlacementPolicy;
        use symi_tensor::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xeea);
        // `alpha` is a public field, so the constructor's range assert is
        // advisory at best: hostile weights must clamp, not poison.
        let evil = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 2.55, 1e300, -0.0, 1.0];
        for &alpha in &evil {
            let mut p = EmaPolicy::new(8, 0.5);
            p.alpha = alpha;
            for iter in 0..16u64 {
                let pop: Vec<u64> = (0..4)
                    .map(|_| match rng.gen_range(0..4u32) {
                        0 => 0,
                        1 => u64::MAX,
                        2 => u64::MAX / 2,
                        _ => rng.gen_range(0..1_000_000u64),
                    })
                    .collect();
                let r = p.next_replicas(0, &pop, iter);
                assert_eq!(r.iter().sum::<usize>(), 8, "alpha={alpha}");
                assert!(r.iter().all(|&c| c >= 1), "alpha={alpha}");
            }
        }
        // The trace evaluator's percent-encoded alpha reaches 2.55, which
        // used to diverge the accumulator; with extreme counts in the trace
        // the result must stay a finite survival fraction for every alpha.
        let mut t = PopularityTrace::new();
        for i in 0..24 {
            t.push(vec![if i % 2 == 0 { u64::MAX } else { 0 }, 1, u64::MAX / 3, 7]);
        }
        for a in [0u8, 1, 100, 200, 255] {
            let s = evaluate_policy_on_trace(&t, TracePolicy::EmaPercent(a), 8, 100.0);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "alpha%={a} survival={s}");
        }
    }

    #[test]
    fn survival_for_replicas_edges() {
        assert_eq!(survival_for_replicas(&[0, 0], &[1, 1], 10.0), 1.0);
        assert_eq!(survival_for_replicas(&[10, 10], &[1, 1], 10.0), 1.0);
        assert_eq!(survival_for_replicas(&[20, 0], &[1, 1], 10.0), 0.5);
    }
}
