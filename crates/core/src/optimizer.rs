//! The SYMI Optimizer (§3.2 steps 4–8, §4.3–§4.4).
//!
//! Every node owns the same `1/N` slice of **every** expert's optimizer
//! state — uniform static sharding, never relocated (Appendix A.1 proves
//! this optimal). Each iteration the optimizer:
//!
//! 1. **Grad Communication Phase** (Algorithm 2): collects its gradient
//!    shard for every class — locally when a replica is co-resident,
//!    otherwise from a source replica chosen by round-robin over the
//!    class's host ranks, spreading load so no replica becomes a hotspot.
//! 2. Steps Adam on each shard (host-side; the staging across PCIe is
//!    accounted via the traffic counters).
//! 3. **Weight Communication Phase**: scatters the updated fp16 weight
//!    shards to each rank hosting the class under the **next** iteration's
//!    placement. Because the slots must receive fresh weights anyway,
//!    re-placement is free — the paper's central claim.
//!
//! All geometry here runs over **logical** ranks `0..view.size()` of a
//! [`MembershipView`]; physical ranks appear only at the wire (send/recv
//! targets and tag `src` fields). On the initial full-world view logical
//! and physical coincide, so the healthy path is bit-identical to the
//! pre-elastic code. After a rank death, [`SymiOptimizer::reshard`]
//! recomputes the `1/N` chunk geometry over the survivors and rebuilds the
//! newly-acquired slices from the freshest surviving state.

use crate::placement::ExpertPlacement;
use symi_collectives::coll::chunk_range;
use symi_collectives::p2p::{OverlapStats, PendingBatch, RecvOp, SendOp};
use symi_collectives::tag::with_step;
use symi_collectives::{
    decode_f16_into, encode_f16, CommError, MembershipView, PendingRecv, RankCtx, TagSpace,
    WirePhase,
};
use symi_telemetry::{Phase, TelemetryHandle};
use symi_tensor::{AdamConfig, AdamShard};

/// Algorithm 2's `get_source`: which host rank serves `for_rank`'s shard
/// of a class hosted on `host_ranks` (ascending).
pub fn get_source(host_ranks: &[usize], for_rank: usize) -> usize {
    debug_assert!(!host_ranks.is_empty(), "class must be hosted somewhere");
    if host_ranks.binary_search(&for_rank).is_ok() {
        return for_rank;
    }
    host_ranks[for_rank % host_ranks.len()]
}

/// Serializable state of one per-class Adam shard — the unit a snapshot
/// (and the elastic-recovery oracle test) moves around.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardState {
    pub offset: usize,
    pub master: Vec<f32>,
    pub m: Vec<f32>,
    pub v: Vec<f32>,
    pub t: u64,
}

impl ShardState {
    /// Parameters this shard covers.
    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    /// Validates this shard against the uniform chunk geometry of
    /// `(param_count, world, logical_rank)` and its own internal length
    /// invariants. Returns the name of the first offending field, which a
    /// checkpoint loader surfaces verbatim so a corrupt-but-CRC-valid blob
    /// is rejected naming the exact field.
    pub fn check_geometry(
        &self,
        param_count: usize,
        world: usize,
        logical_rank: usize,
    ) -> Result<(), &'static str> {
        let (start, end) = chunk_range(param_count, world, logical_rank);
        if self.offset != start {
            return Err("shard.offset");
        }
        if self.master.len() != end - start {
            return Err("shard.master");
        }
        if self.m.len() != self.master.len() {
            return Err("shard.m");
        }
        if self.v.len() != self.master.len() {
            return Err("shard.v");
        }
        Ok(())
    }
}

/// Accounting of one [`SymiOptimizer::reshard`]: how many parameters of
/// this rank's new shard were kept (old chunk overlap, moments intact),
/// how many were re-acquired with moments reset (the documented, bounded
/// degradation of a *shrink*), how many — of those — had to fall back to
/// canonical re-initialization because no surviving copy existed at all,
/// and how many arrived with their full fp32 Adam state over the wire (a
/// *grow* transfers shed slices moments-and-all, so a join never degrades
/// optimizer state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReshardReport {
    pub kept_params: u64,
    pub reseeded_params: u64,
    pub reinitialized_params: u64,
    pub transferred_params: u64,
}

/// Where an acquired re-shard segment's master weights come from, in
/// freshness order (§3.3: the fp16 replicas are refreshed every iteration,
/// so they are the best surviving copy when the fp32 owner died).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PieceSource {
    /// fp16 working weights of the class's lowest surviving replica host.
    F16Replica { src: usize },
    /// fp32 master slice from the segment's previous chunk owner (only for
    /// classes whose every fp16 replica died with the lost rank).
    F32Master { src: usize },
    /// Canonical deterministic re-initialization: no surviving copy.
    Reinit,
}

/// One contiguous segment `[start, end)` of one class's flat parameters
/// that `dst` (physical) must acquire during a re-shard.
#[derive(Clone, Copy, Debug)]
struct ReshardPiece {
    class: usize,
    dst: usize,
    start: usize,
    end: usize,
    source: PieceSource,
}

/// Deterministic re-shard transfer plan, identical on every survivor: for
/// each class and each new chunk owner, the segments it does not already
/// hold and the freshest surviving source for each.
fn reshard_plan(
    old_view: &MembershipView,
    new_view: &MembershipView,
    old_placement: &ExpertPlacement,
    expert_classes: usize,
    param_count: usize,
) -> Vec<ReshardPiece> {
    let old_n = old_view.size();
    let new_n = new_view.size();
    let mut plan = Vec::new();
    for class in 0..expert_classes {
        // fp16 authority: lowest surviving *physical* rank hosting the
        // class under the old placement (all replicas are bit-identical,
        // so one canonical choice keeps every survivor's plan equal).
        let authority = old_placement
            .host_ranks(class)
            .iter()
            .map(|&l| old_view.physical_of(l))
            .filter(|&p| new_view.is_alive(p))
            .min();
        for dst_l in 0..new_n {
            let dst = new_view.physical_of(dst_l);
            let (ns, ne) = chunk_range(param_count, new_n, dst_l);
            let dst_old_l = old_view.logical_of(dst).expect("new-view ranks survive the old");
            let (os, oe) = chunk_range(param_count, old_n, dst_old_l);
            // Acquired = new chunk minus old chunk: at most two segments.
            let before = (ns, ne.min(os));
            let after = (ns.max(oe), ne);
            for (a, b) in [before, after] {
                if a >= b {
                    continue;
                }
                match authority {
                    Some(src) => {
                        plan.push(ReshardPiece {
                            class,
                            dst,
                            start: a,
                            end: b,
                            source: PieceSource::F16Replica { src },
                        });
                    }
                    None => {
                        // Orphan class: split by the *old* chunk geometry
                        // and pull each sub-piece's fp32 master from its
                        // previous owner when that owner survives.
                        for owner_l in 0..old_n {
                            let (cs, ce) = chunk_range(param_count, old_n, owner_l);
                            let (pa, pb) = (a.max(cs), b.min(ce));
                            if pa >= pb {
                                continue;
                            }
                            let owner = old_view.physical_of(owner_l);
                            let source = if new_view.is_alive(owner) {
                                PieceSource::F32Master { src: owner }
                            } else {
                                PieceSource::Reinit
                            };
                            plan.push(ReshardPiece { class, dst, start: pa, end: pb, source });
                        }
                    }
                }
            }
        }
    }
    plan
}

/// One contiguous segment `[start, end)` of the fp32 Adam state (identical
/// geometry for every class) that `dst` must acquire from `src` during a
/// *grow* re-shard. Both ranks are physical; `src` is the segment's old
/// chunk owner, which a pure grow guarantees is still alive.
#[derive(Clone, Copy, Debug)]
struct GrowPiece {
    dst: usize,
    start: usize,
    end: usize,
    src: usize,
}

/// Deterministic grow-transfer plan, identical on every member of the new
/// view (the joiner included — unlike the shrink plan it needs no old
/// placement, because shed fp32 state moves owner-to-owner rather than
/// being rebuilt from fp16 replicas): for each new chunk owner, the
/// segments its new chunk acquires beyond its old chunk (the whole chunk,
/// for a brand-new member), split by the old chunk geometry so each
/// segment has exactly one source.
fn grow_plan(
    old_view: &MembershipView,
    new_view: &MembershipView,
    param_count: usize,
) -> Vec<GrowPiece> {
    let old_n = old_view.size();
    let new_n = new_view.size();
    let mut plan = Vec::new();
    for dst_l in 0..new_n {
        let dst = new_view.physical_of(dst_l);
        let (ns, ne) = chunk_range(param_count, new_n, dst_l);
        let (os, oe) = match old_view.logical_of(dst) {
            Some(old_l) => chunk_range(param_count, old_n, old_l),
            None => (ns, ns), // the joiner held nothing: acquire everything
        };
        // Acquired = new chunk minus old chunk: at most two segments.
        let before = (ns, ne.min(os));
        let after = (ns.max(oe), ne);
        for (a, b) in [before, after] {
            if a >= b {
                continue;
            }
            for owner_l in 0..old_n {
                let (cs, ce) = chunk_range(param_count, old_n, owner_l);
                let (pa, pb) = (a.max(cs), b.min(ce));
                if pa >= pb {
                    continue;
                }
                plan.push(GrowPiece {
                    dst,
                    start: pa,
                    end: pb,
                    src: old_view.physical_of(owner_l),
                });
            }
        }
    }
    plan
}

/// One class's gradient-shard source in a split (issue/complete) grad
/// collection.
enum GradSource {
    /// Class is hosted locally; its synchronized gradient has not been
    /// handed over yet ([`SymiOptimizer::collect_grads_serve_class`]).
    AwaitLocal,
    /// Wire receive posted at issue time, not yet completed.
    Wire(PendingRecv),
    /// Shard available (local copy made, or wire op completed by a poll).
    Ready(Vec<f32>),
    /// Shard consumed by the caller (already stepped).
    Taken,
}

/// The in-flight half of a split Grad Communication Phase: every receive
/// for this rank's shard posted up-front, per-class sends issued as each
/// class's synchronized gradient becomes available, per-class completions
/// consumed in any order. Created by
/// [`SymiOptimizer::collect_grads_begin`]; every class must end `Taken`
/// before [`SymiOptimizer::collect_grads_finish`].
pub struct GradCollectPending {
    sources: Vec<GradSource>,
    /// `ctx.protocol_stats().retries` at issue time, for the
    /// `grad_collect_retries` gauge delta.
    retries_before: u64,
}

impl GradCollectPending {
    /// Classes whose shard has not been taken yet, in class order.
    pub fn remaining(&self) -> Vec<usize> {
        self.sources
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, GradSource::Taken))
            .map(|(c, _)| c)
            .collect()
    }
}

/// The in-flight half of a split Weight Communication Phase: fp16 shards
/// encoded and sent, every receive posted, assembly deferred to
/// [`SymiOptimizer::distribute_weights_finish`]. Between the two calls the
/// transfers ride under the caller's compute — for the cross-iteration
/// double buffer, the *next* iteration's routing and popularity phases.
pub struct WeightDistributePending {
    batch: PendingBatch,
    /// This rank's own encoded shards (local assembly source).
    half_shards: Vec<Vec<u16>>,
    /// `classes_on_rank(lrank)` of the target placement, captured at issue.
    my_classes: Vec<(usize, Vec<usize>)>,
    slots_per_rank: usize,
    retries_before: u64,
}

impl WeightDistributePending {
    /// Wire receives not yet completed.
    pub fn outstanding(&self) -> usize {
        self.batch.outstanding()
    }
}

/// Per-rank SYMI optimizer state: one Adam shard per expert class.
pub struct SymiOptimizer {
    view: MembershipView,
    /// Logical rank within `view` (== physical on the initial full view).
    lrank: usize,
    adam: AdamConfig,
    param_count: usize,
    shards: Vec<AdamShard>,
    telemetry: TelemetryHandle,
}

impl SymiOptimizer {
    /// Initializes this rank's shard of every class from the classes'
    /// initial flat parameters (identical across ranks by construction),
    /// over the full `nodes`-rank world.
    pub fn new(rank: usize, nodes: usize, adam: AdamConfig, class_params: &[Vec<f32>]) -> Self {
        Self::with_view(MembershipView::full(nodes), rank, adam, class_params)
    }

    /// Initializes this rank's shards over an explicit membership view —
    /// the standby-world entry point: a cluster can run `active < world`
    /// members (`MembershipView::partial`) with the idle ranks awaiting a
    /// later join.
    pub fn with_view(
        view: MembershipView,
        logical_rank: usize,
        adam: AdamConfig,
        class_params: &[Vec<f32>],
    ) -> Self {
        assert!(!class_params.is_empty(), "need at least one expert class");
        assert!(logical_rank < view.size(), "logical rank {logical_rank} out of the view");
        let param_count = class_params[0].len();
        assert!(class_params.iter().all(|p| p.len() == param_count), "uneven expert sizes");
        let (start, end) = chunk_range(param_count, view.size(), logical_rank);
        let shards =
            class_params.iter().map(|p| AdamShard::new(adam, start, &p[start..end])).collect();
        Self {
            view,
            lrank: logical_rank,
            adam,
            param_count,
            shards,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Rebuilds an optimizer from explicit shard state — the snapshot
    /// restore path (and the oracle side of the elastic recovery test).
    ///
    /// # Panics
    /// Panics if a state blob's offset/length disagrees with the chunk
    /// geometry of `logical_rank` under `view`.
    pub fn from_shard_states(
        view: MembershipView,
        logical_rank: usize,
        adam: AdamConfig,
        param_count: usize,
        states: Vec<ShardState>,
    ) -> Self {
        assert!(!states.is_empty(), "need at least one expert class");
        let (start, end) = chunk_range(param_count, view.size(), logical_rank);
        let shards = states
            .into_iter()
            .map(|s| {
                assert_eq!(s.offset, start, "shard offset disagrees with chunk geometry");
                assert_eq!(s.master.len(), end - start, "shard length disagrees with geometry");
                AdamShard::from_parts(adam, s.offset, s.master, s.m, s.v, s.t)
            })
            .collect();
        Self {
            view,
            lrank: logical_rank,
            adam,
            param_count,
            shards,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry handle: the three optimizer phases then time
    /// themselves (GradComm / OptimizerStep / WeightComm spans) and report
    /// the per-rank state footprint as a gauge.
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// The membership view this optimizer's geometry is built over.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// This rank's logical rank within [`SymiOptimizer::view`].
    pub fn logical_rank(&self) -> usize {
        self.lrank
    }

    fn nodes(&self) -> usize {
        self.view.size()
    }

    fn my_phys(&self) -> usize {
        self.view.physical_of(self.lrank)
    }

    /// This rank's shard boundaries within a flat expert parameter vector.
    /// Zero-length shards (more survivors than parameters) are legal: such
    /// a rank simply neither sends nor receives in the shard phases.
    pub fn shard_range(&self) -> (usize, usize) {
        chunk_range(self.param_count, self.nodes(), self.lrank)
    }

    pub fn expert_classes(&self) -> usize {
        self.shards.len()
    }

    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Adam's step counter (uniform across classes: [`SymiOptimizer::step`]
    /// advances every class together; 0 before the first step). A join
    /// carries this in the agreement payload so the joiner's bias
    /// correction continues exactly where the cluster is.
    pub fn adam_step_count(&self) -> u64 {
        self.shards.first().map_or(0, AdamShard::step_count)
    }

    /// Optimizer-state bytes held on this rank (16 B/param accounting).
    pub fn state_bytes(&self) -> u64 {
        self.shards.iter().map(AdamShard::state_bytes).sum()
    }

    /// Serializes every per-class shard (snapshot support).
    pub fn export_shard_states(&self) -> Vec<ShardState> {
        self.shards
            .iter()
            .map(|sh| {
                let (m, v) = sh.moments();
                ShardState {
                    offset: sh.offset(),
                    master: sh.master_weights().to_vec(),
                    m: m.to_vec(),
                    v: v.to_vec(),
                    t: sh.step_count(),
                }
            })
            .collect()
    }

    /// fp32 master shards of every class (the weight-materialization input
    /// after a restore or re-shard).
    pub fn master_weight_shards(&self) -> Vec<Vec<f32>> {
        self.shards.iter().map(|sh| sh.master_weights().to_vec()).collect()
    }

    /// Grad Communication Phase: every rank ends up with its shard of every
    /// class's (already EDP-synchronized) gradient.
    ///
    /// `local_grads[class]` is `Some(full flat gradient)` iff this rank
    /// hosts a replica of `class` under `placement` (logical ranks). `tags`
    /// is the iteration's structured tag space: every shard travels under
    /// `(GradCollect, class, src_physical)` with exclusive bit fields, and
    /// each receive validates the shard's element count at the wire.
    pub fn collect_grads(
        &self,
        ctx: &mut RankCtx,
        placement: &ExpertPlacement,
        local_grads: &[Option<Vec<f32>>],
        tags: TagSpace,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = self.telemetry.span(Phase::GradComm);
        let e = self.shards.len();
        assert_eq!(local_grads.len(), e, "one (optional) gradient per class");
        let n = self.nodes();
        let me_phys = self.my_phys();
        ctx.begin_epoch(tags.iteration(), WirePhase::GradCollect);

        // Sends: for every class I host, serve the shard of every rank whose
        // get_source picks me. Zero-length destination shards never touch
        // the wire (both sides compute the same chunk geometry).
        let mut sends = Vec::new();
        for (class, maybe_grad) in local_grads.iter().enumerate() {
            let Some(grad) = maybe_grad else { continue };
            let hosts = placement.host_ranks(class);
            debug_assert!(hosts.contains(&self.lrank), "have grads only for hosted classes");
            for dst in 0..n {
                if dst == self.lrank {
                    continue;
                }
                if get_source(&hosts, dst) == self.lrank {
                    let (s, t) = chunk_range(self.param_count, n, dst);
                    if s == t {
                        continue;
                    }
                    sends.push(SendOp::new(
                        self.view.physical_of(dst),
                        tags.tag(WirePhase::GradCollect, class, me_phys),
                        grad[s..t].to_vec(),
                    ));
                }
            }
        }

        // Receives: my shard of every class, locally when possible.
        let (ms, mt) = self.shard_range();
        let mut recvs = Vec::new();
        let mut local_copy: Vec<Option<Vec<f32>>> = vec![None; e];
        for class in 0..e {
            if ms == mt {
                // Zero-length shard: nothing to collect for any class.
                local_copy[class] = Some(Vec::new());
                continue;
            }
            let hosts = placement.host_ranks(class);
            let src = get_source(&hosts, self.lrank);
            if src == self.lrank {
                let grad = local_grads[class]
                    .as_ref()
                    .expect("get_source returned self, so the class is local");
                local_copy[class] = Some(grad[ms..mt].to_vec());
            } else {
                let src_phys = self.view.physical_of(src);
                recvs.push(RecvOp::sized(
                    src_phys,
                    tags.tag(WirePhase::GradCollect, class, src_phys),
                    mt - ms,
                ));
            }
        }
        let retries_before = ctx.protocol_stats().retries;
        let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();
        if self.telemetry.is_enabled() {
            // Retry attempts burned collecting this iteration's shards —
            // the first phase to stutter when a source replica straggles.
            let delta = ctx.protocol_stats().retries - retries_before;
            self.telemetry.gauge("grad_collect_retries").set(delta as f64);
        }

        // Stage every collected shard into host memory (PCIe leg of T_G;
        // gradients stay fp32 — only the weight phase travels fp16).
        let mut out = Vec::with_capacity(e);
        for slot in local_copy {
            let shard = match slot {
                Some(local) => local,
                None => received.next().expect("one receive per remote class").into_f32()?,
            };
            ctx.record_host_device_bytes(shard.len() as u64 * 4);
            out.push(shard);
        }
        Ok(out)
    }

    /// The issue half of a split [`SymiOptimizer::collect_grads`]: advances
    /// the fencing epoch and posts the wire receive for this rank's shard
    /// of every class whose Algorithm-2 source is remote — *before* any
    /// backward GEMM has run, so arrivals from faster peers drain into the
    /// mailbox while this rank is still computing. Locally-sourced classes
    /// wait for [`SymiOptimizer::collect_grads_serve_class`].
    pub fn collect_grads_begin(
        &self,
        ctx: &mut RankCtx,
        placement: &ExpertPlacement,
        tags: TagSpace,
    ) -> GradCollectPending {
        let _span = self.telemetry.span(Phase::GradComm);
        let e = self.shards.len();
        ctx.begin_epoch(tags.iteration(), WirePhase::GradCollect);
        let (ms, mt) = self.shard_range();
        let retries_before = ctx.protocol_stats().retries;
        let mut sources = Vec::with_capacity(e);
        for class in 0..e {
            if ms == mt {
                // Zero-length shard: nothing to collect for any class.
                sources.push(GradSource::Ready(Vec::new()));
                continue;
            }
            let hosts = placement.host_ranks(class);
            let src = get_source(&hosts, self.lrank);
            if src == self.lrank {
                sources.push(GradSource::AwaitLocal);
            } else {
                let src_phys = self.view.physical_of(src);
                let op = ctx.irecv_sized(
                    src_phys,
                    tags.tag(WirePhase::GradCollect, class, src_phys),
                    mt - ms,
                );
                sources.push(GradSource::Wire(op));
            }
        }
        GradCollectPending { sources, retries_before }
    }

    /// Serves one hosted class's synchronized gradient into a split
    /// collection: issues the shard sends to every rank whose `get_source`
    /// picks this rank, and satisfies the local copy if this rank sources
    /// the class for itself. Call exactly once per hosted class, as soon as
    /// that class's gradient all-reduce completes — classes still in their
    /// backward GEMMs are unaffected, which is the overlap.
    pub fn collect_grads_serve_class(
        &self,
        ctx: &mut RankCtx,
        pending: &mut GradCollectPending,
        placement: &ExpertPlacement,
        class: usize,
        grad: &[f32],
        tags: TagSpace,
    ) -> Result<(), CommError> {
        let _span = self.telemetry.span(Phase::GradComm);
        let n = self.nodes();
        let me_phys = self.my_phys();
        let hosts = placement.host_ranks(class);
        debug_assert!(hosts.contains(&self.lrank), "serve only hosted classes");
        for dst in 0..n {
            if dst == self.lrank {
                continue;
            }
            if get_source(&hosts, dst) == self.lrank {
                let (s, t) = chunk_range(self.param_count, n, dst);
                if s == t {
                    continue;
                }
                ctx.isend(
                    self.view.physical_of(dst),
                    tags.tag(WirePhase::GradCollect, class, me_phys),
                    grad[s..t].to_vec(),
                )?;
            }
        }
        if matches!(pending.sources[class], GradSource::AwaitLocal) {
            let (ms, mt) = self.shard_range();
            pending.sources[class] = GradSource::Ready(grad[ms..mt].to_vec());
        }
        Ok(())
    }

    /// Nonblocking completion attempt for one class of a split collection:
    /// returns the shard if it is already available (local copy made, or
    /// the wire payload arrived while compute ran), `None` if still in
    /// flight or not yet served. The shard is staged host-side exactly as
    /// the blocking path stages it.
    pub fn collect_grads_try_take(
        &self,
        ctx: &mut RankCtx,
        pending: &mut GradCollectPending,
        class: usize,
    ) -> Result<Option<Vec<f32>>, CommError> {
        match std::mem::replace(&mut pending.sources[class], GradSource::Taken) {
            GradSource::Taken => panic!("class {class} gradient shard taken twice"),
            GradSource::AwaitLocal => {
                pending.sources[class] = GradSource::AwaitLocal;
                Ok(None)
            }
            GradSource::Ready(shard) => {
                ctx.record_host_device_bytes(shard.len() as u64 * 4);
                Ok(Some(shard))
            }
            GradSource::Wire(op) => {
                if op.poll(ctx)? {
                    let shard = op.wait(ctx)?.into_f32()?;
                    ctx.record_host_device_bytes(shard.len() as u64 * 4);
                    Ok(Some(shard))
                } else {
                    pending.sources[class] = GradSource::Wire(op);
                    Ok(None)
                }
            }
        }
    }

    /// Blocking completion for one class of a split collection. The class
    /// must already have been served if its source is local.
    pub fn collect_grads_wait_take(
        &self,
        ctx: &mut RankCtx,
        pending: &mut GradCollectPending,
        class: usize,
    ) -> Result<Vec<f32>, CommError> {
        let _span = self.telemetry.span(Phase::GradComm);
        match std::mem::replace(&mut pending.sources[class], GradSource::Taken) {
            GradSource::Taken => panic!("class {class} gradient shard taken twice"),
            GradSource::AwaitLocal => {
                panic!("class {class} waited on before its gradient was served")
            }
            GradSource::Ready(shard) => {
                ctx.record_host_device_bytes(shard.len() as u64 * 4);
                Ok(shard)
            }
            GradSource::Wire(op) => {
                let shard = op.wait(ctx)?.into_f32()?;
                ctx.record_host_device_bytes(shard.len() as u64 * 4);
                Ok(shard)
            }
        }
    }

    /// Closes out a split collection: every class must have been taken.
    /// Publishes the same `grad_collect_retries` gauge delta as the
    /// blocking path.
    pub fn collect_grads_finish(&self, ctx: &RankCtx, pending: GradCollectPending) {
        assert!(
            pending.remaining().is_empty(),
            "grad collection finished with classes outstanding: {:?}",
            pending.remaining()
        );
        if self.telemetry.is_enabled() {
            let delta = ctx.protocol_stats().retries - pending.retries_before;
            self.telemetry.gauge("grad_collect_retries").set(delta as f64);
        }
    }

    /// Adam step over one class's shard — the eager per-class half of
    /// [`SymiOptimizer::step`], fired as soon as that class's gradient
    /// shard lands. Per-class shards are independent, so any completion
    /// order produces bit-identical state.
    pub fn step_class(&mut self, class: usize, grad_shard: &[f32]) -> Vec<f32> {
        let _span = self.telemetry.span(Phase::OptimizerStep);
        self.shards[class].step(grad_shard)
    }

    /// Adam step over every class's shard; returns the updated fp16-rounded
    /// weight shards. Each shard's elementwise update runs in parallel
    /// chunks on the shared worker pool (`symi_tensor::pool`), bit-exact
    /// for any worker count.
    pub fn step(&mut self, grad_shards: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let _span = self.telemetry.span(Phase::OptimizerStep);
        assert_eq!(grad_shards.len(), self.shards.len(), "one gradient shard per class");
        if self.telemetry.is_enabled() {
            self.telemetry.gauge("optimizer_state_bytes").set(self.state_bytes() as f64);
        }
        self.shards.iter_mut().zip(grad_shards).map(|(shard, grad)| shard.step(grad)).collect()
    }

    /// Weight Communication Phase: sends this rank's updated weight shard of
    /// every class **once per destination rank hosting the class** under the
    /// *new* placement, and assembles the full weights for each local slot.
    ///
    /// Returns one flat weight vector per local slot (indexed by local slot
    /// id), ready to load into the physical experts — thereby
    /// *materializing* the new placement with zero extra traffic relative
    /// to a static system's weight update (§3.3-II).
    ///
    /// The shard is fp16-encoded exactly once per class; a destination rank
    /// hosting several sibling slots of one class receives the shard once
    /// and fans it out locally, and this rank's own slots are served
    /// straight from the encoded buffer without touching the wire. (The
    /// previous implementation cloned and sent the encoded shard once per
    /// *slot*, self-deliveries included — pure duplication, since sibling
    /// slots hold bit-identical weights.) Zero-length shards are skipped on
    /// the wire by both sides. The shards are fp16-quantized by
    /// [`SymiOptimizer::step`], so they travel the wire (and the PCIe
    /// staging leg) as 2 B/param [`Payload::F16`]; re-encoding is bit-exact
    /// because the values are already on the fp16 grid.
    ///
    /// [`Payload::F16`]: symi_collectives::Payload::F16
    pub fn distribute_weights(
        &self,
        ctx: &mut RankCtx,
        new_placement: &ExpertPlacement,
        weight_shards: &[Vec<f32>],
        tags: TagSpace,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let pending = self.distribute_weights_begin(ctx, new_placement, weight_shards, tags)?;
        Ok(self.distribute_weights_finish(ctx, pending)?.0)
    }

    /// The issue half of [`SymiOptimizer::distribute_weights`]: advances
    /// the fencing epoch, fp16-encodes and sends every shard, posts every
    /// receive, and returns the in-flight state. The double-buffered
    /// engine calls this at the end of iteration *i* and defers the finish
    /// half past iteration *i+1*'s routing and popularity phases — the
    /// weight traffic rides under that compute for free, and the epoch
    /// carried in each structured tag keeps the cross-iteration traffic
    /// fenced from every other phase.
    pub fn distribute_weights_begin(
        &self,
        ctx: &mut RankCtx,
        new_placement: &ExpertPlacement,
        weight_shards: &[Vec<f32>],
        tags: TagSpace,
    ) -> Result<WeightDistributePending, CommError> {
        let _span = self.telemetry.span(Phase::WeightComm);
        let n = self.nodes();
        assert_eq!(weight_shards.len(), self.shards.len(), "one weight shard per class");
        assert_eq!(new_placement.ranks(), n, "placement rank count mismatch");
        ctx.begin_epoch(tags.iteration(), WirePhase::WeightDistribute);
        let me_phys = self.my_phys();

        // Narrow once per class (parallel chunks on the shared pool); the
        // shard leaves host memory over PCIe at its true fp16 width
        // (2 B/param).
        let half_shards: Vec<Vec<u16>> =
            weight_shards.iter().map(|shard| encode_f16(shard)).collect();
        for shard in &half_shards {
            ctx.record_host_device_bytes(shard.len() as u64 * 2);
        }

        // One send per (class, distinct remote host rank); my own slots are
        // fed locally at finish.
        let (ms, mt) = self.shard_range();
        let mut sends = Vec::new();
        if ms != mt {
            for (class, half) in half_shards.iter().enumerate() {
                for &dst in &new_placement.host_ranks(class) {
                    if dst == self.lrank {
                        continue;
                    }
                    sends.push(SendOp::new(
                        self.view.physical_of(dst),
                        tags.tag(WirePhase::WeightDistribute, class, me_phys),
                        half.clone(),
                    ));
                }
            }
        }

        // Receive each of my distinct classes' shard from every rank with a
        // non-empty chunk, length-checked at the wire.
        let my_classes = new_placement.classes_on_rank(self.lrank);
        let mut recvs = Vec::new();
        for &(class, _) in &my_classes {
            for src in 0..n {
                if src == self.lrank {
                    continue;
                }
                let (a, b) = chunk_range(self.param_count, n, src);
                if a == b {
                    continue;
                }
                let src_phys = self.view.physical_of(src);
                recvs.push(RecvOp::sized(
                    src_phys,
                    tags.tag(WirePhase::WeightDistribute, class, src_phys),
                    b - a,
                ));
            }
        }
        let retries_before = ctx.protocol_stats().retries;
        let batch = ctx.batch_issue(sends, &recvs)?;
        Ok(WeightDistributePending {
            batch,
            half_shards,
            my_classes,
            slots_per_rank: new_placement.slots_per_rank(),
            retries_before,
        })
    }

    /// Nonblocking progress on an in-flight weight distribution; `true`
    /// once every receive has landed (the fence will not block).
    pub fn distribute_weights_poll(
        &self,
        ctx: &mut RankCtx,
        pending: &mut WeightDistributePending,
    ) -> Result<bool, CommError> {
        pending.batch.poll(ctx)
    }

    /// The fence half of [`SymiOptimizer::distribute_weights`]: blocks out
    /// the remaining receives, assembles one full vector per distinct
    /// class, and fans out to the sibling slots — exactly the blocking
    /// path's assembly, plus the hidden/exposed accounting of the wait.
    pub fn distribute_weights_finish(
        &self,
        ctx: &mut RankCtx,
        pending: WeightDistributePending,
    ) -> Result<(Vec<Vec<f32>>, OverlapStats), CommError> {
        let _span = self.telemetry.span(Phase::WeightComm);
        let n = self.nodes();
        let WeightDistributePending {
            batch,
            half_shards,
            my_classes,
            slots_per_rank,
            retries_before,
        } = pending;
        let (payloads, stats) = batch.complete(ctx)?;
        let mut received = payloads.into_iter();
        if self.telemetry.is_enabled() {
            // Retry attempts burned materializing the new placement — a
            // persistent nonzero here under a *healthy* plan would mean
            // ranks disagree about the placement (see engine degradation
            // notes), so it is worth its own gauge.
            let delta = ctx.protocol_stats().retries - retries_before;
            self.telemetry.gauge("weight_distribute_retries").set(delta as f64);
        }

        // Assemble one full vector per distinct class, then fan out to the
        // sibling slots.
        let mut assembled: Vec<Vec<f32>> = Vec::with_capacity(my_classes.len());
        for &(class, _) in &my_classes {
            let mut full = vec![0.0f32; self.param_count];
            for src in 0..n {
                let (a, b) = chunk_range(self.param_count, n, src);
                if a == b {
                    continue;
                }
                if src == self.lrank {
                    decode_f16_into(&half_shards[class], &mut full[a..b]);
                } else {
                    let shard =
                        received.next().expect("one receive per (class, src)").into_f16()?;
                    decode_f16_into(&shard, &mut full[a..b]);
                }
            }
            assembled.push(full);
        }

        let mut out: Vec<Vec<f32>> = vec![Vec::new(); slots_per_rank];
        for ((_, locals), full) in my_classes.iter().zip(assembled) {
            let (&last, rest) = locals.split_last().expect("class listed only when hosted");
            for &local in rest {
                out[local] = full.clone();
            }
            out[last] = full;
        }
        Ok((out, stats))
    }

    /// Re-shards optimizer ownership over the survivors of `new_view` —
    /// the core of elastic recovery (the tentpole of this change).
    ///
    /// The `1/N` chunk geometry recomputes over `new_view.size()` ranks.
    /// For the slice this rank still owns (old ∩ new chunk) the full fp32
    /// Adam state — master weights *and* both moments — is kept. For the
    /// newly-acquired remainder the master weights are reconstructed from
    /// the freshest surviving copy and the moments reset to zero (counted
    /// in [`ReshardReport::reseeded_params`] — a documented, bounded
    /// degradation equivalent to a warm restart of those coordinates, not
    /// silent divergence):
    ///
    /// 1. the class's fp16 replica weights on the lowest surviving physical
    ///    host under `old_placement` (replicas are bit-identical, refreshed
    ///    last iteration — the freshest copy there is);
    /// 2. for *orphan* classes (every replica lived on dead ranks): the
    ///    fp32 master slices of the segment's previous chunk owners, where
    ///    those survive;
    /// 3. canonical re-initialization via `canonical_init(class)` for
    ///    segments with no surviving copy at all (additionally counted in
    ///    [`ReshardReport::reinitialized_params`]).
    ///
    /// `local_class_weights` carries `(class, full fp16-grid weights)` for
    /// each class this rank hosts under `old_placement`. The transfer plan
    /// is a pure function of `(old view, new view, old placement, P)`, so
    /// every survivor computes it identically; pieces travel under `tags`
    /// (the recovery tag plane) with `WeightDistribute` phase and a per-
    /// piece step field, so they can never alias the membership rounds or
    /// the subsequent weight materialization.
    pub fn reshard(
        &mut self,
        ctx: &mut RankCtx,
        new_view: &MembershipView,
        old_placement: &ExpertPlacement,
        local_class_weights: &[(usize, Vec<f32>)],
        canonical_init: &dyn Fn(usize) -> Vec<f32>,
        tags: TagSpace,
    ) -> Result<ReshardReport, CommError> {
        assert!(new_view.epoch() > self.view.epoch(), "re-shard needs a successor view");
        if new_view.size() > self.nodes() {
            // The growing direction: shed slices transfer their full fp32
            // Adam state owner-to-owner, so the old placement, the fp16
            // replicas, and the canonical init never enter the geometry.
            return self.reshard_grow(ctx, new_view, tags);
        }
        let _span = self.telemetry.span(Phase::WeightComm);
        let e = self.shards.len();
        assert_eq!(old_placement.ranks(), self.nodes(), "old placement rank count mismatch");
        let me_phys = self.my_phys();
        assert!(new_view.is_alive(me_phys), "a dead rank cannot re-shard");
        let new_n = new_view.size();
        let new_l = new_view.logical_of(me_phys).expect("checked alive");
        let (os, oe) = self.shard_range();
        let (ns, ne) = chunk_range(self.param_count, new_n, new_l);
        ctx.begin_epoch(tags.iteration(), WirePhase::WeightDistribute);

        let plan = reshard_plan(&self.view, new_view, old_placement, e, self.param_count);

        // Per-(class, dst) wire-piece counters give every wire piece a
        // unique step field; sender and receiver walk the identical plan,
        // so the counters agree by construction.
        let mut piece_idx: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for piece in &plan {
            let src = match piece.source {
                PieceSource::F16Replica { src } | PieceSource::F32Master { src } => src,
                PieceSource::Reinit => continue,
            };
            if src == piece.dst {
                continue; // local copy, never on the wire
            }
            let idx = piece_idx.entry((piece.class, piece.dst)).or_insert(0);
            let tag = with_step(tags.tag(WirePhase::WeightDistribute, piece.class, src), *idx);
            *idx += 1;
            let len = piece.end - piece.start;
            if src == me_phys {
                match piece.source {
                    PieceSource::F16Replica { .. } => {
                        let (_, weights) = local_class_weights
                            .iter()
                            .find(|(c, _)| *c == piece.class)
                            .expect("authority hosts the class it serves");
                        sends.push(SendOp::new(
                            piece.dst,
                            tag,
                            encode_f16(&weights[piece.start..piece.end]),
                        ));
                    }
                    PieceSource::F32Master { .. } => {
                        let master = self.shards[piece.class].master_weights();
                        sends.push(SendOp::new(
                            piece.dst,
                            tag,
                            master[piece.start - os..piece.end - os].to_vec(),
                        ));
                    }
                    PieceSource::Reinit => unreachable!(),
                }
            } else if piece.dst == me_phys {
                recvs.push(RecvOp::sized(src, tag, len));
            }
        }
        let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();

        // Assemble the new shards: kept overlap first, then acquired pieces
        // in plan order (consuming the received iterator in post order).
        let new_len = ne - ns;
        let keep = (ns.max(os), ne.min(oe));
        let mut report = ReshardReport::default();
        let mut new_shards = Vec::with_capacity(e);
        for old in &self.shards {
            let mut master = vec![0.0f32; new_len];
            let mut m = vec![0.0f32; new_len];
            let mut v = vec![0.0f32; new_len];
            if keep.0 < keep.1 {
                let (om, ov) = old.moments();
                let dst_r = keep.0 - ns..keep.1 - ns;
                let src_r = keep.0 - os..keep.1 - os;
                master[dst_r.clone()].copy_from_slice(&old.master_weights()[src_r.clone()]);
                m[dst_r.clone()].copy_from_slice(&om[src_r.clone()]);
                v[dst_r].copy_from_slice(&ov[src_r]);
                report.kept_params += (keep.1 - keep.0) as u64;
            }
            new_shards.push((master, m, v, old.step_count()));
        }
        for piece in &plan {
            if piece.dst != me_phys {
                continue;
            }
            let out = &mut new_shards[piece.class].0[piece.start - ns..piece.end - ns];
            match piece.source {
                PieceSource::F16Replica { src } if src == me_phys => {
                    let (_, weights) = local_class_weights
                        .iter()
                        .find(|(c, _)| *c == piece.class)
                        .expect("authority hosts the class it serves");
                    out.copy_from_slice(&weights[piece.start..piece.end]);
                }
                PieceSource::F16Replica { .. } => {
                    let half = received.next().expect("one receive per wire piece").into_f16()?;
                    decode_f16_into(&half, out);
                }
                PieceSource::F32Master { .. } => {
                    let full = received.next().expect("one receive per wire piece").into_f32()?;
                    out.copy_from_slice(&full);
                }
                PieceSource::Reinit => {
                    out.copy_from_slice(&canonical_init(piece.class)[piece.start..piece.end]);
                    report.reinitialized_params += (piece.end - piece.start) as u64;
                }
            }
            report.reseeded_params += (piece.end - piece.start) as u64;
        }

        self.shards = new_shards
            .into_iter()
            .map(|(master, m, v, t)| AdamShard::from_parts(self.adam, ns, master, m, v, t))
            .collect();
        self.view = new_view.clone();
        self.lrank = new_l;
        Ok(report)
    }

    /// The survivor side of a *grow* re-shard ([`SymiOptimizer::reshard`]
    /// dispatches here when `new_view` is larger): every member's chunk
    /// shrinks to `1/(N+1)`, and each shed slice travels to its new owner
    /// with its full fp32 Adam state — master weights **and** both moments
    /// — so a join never degrades optimizer state the way acquire-on-shrink
    /// legitimately does. Mixed join+death changes are rejected loudly:
    /// recover (shrink) first, then admit.
    fn reshard_grow(
        &mut self,
        ctx: &mut RankCtx,
        new_view: &MembershipView,
        tags: TagSpace,
    ) -> Result<ReshardReport, CommError> {
        let telemetry = self.telemetry.clone();
        let _span = telemetry.span(Phase::WeightComm);
        let me_phys = self.my_phys();
        assert!(new_view.is_alive(me_phys), "a dropped rank cannot re-shard");
        for p in self.view.survivors() {
            assert!(
                new_view.is_alive(p),
                "mixed join+death membership change is unsupported: rank {p} was dropped \
                 while another joined — recover the death first, then admit the joiner"
            );
        }
        let (shards, report) = grow_exchange(
            ctx,
            &self.view,
            new_view,
            me_phys,
            self.shards.len(),
            self.param_count,
            self.adam,
            Some(&self.shards),
            0,
            tags,
        )?;
        self.shards = shards;
        self.lrank = new_view.logical_of(me_phys).expect("checked alive");
        self.view = new_view.clone();
        Ok(report)
    }

    /// The joiner's side of a grow re-shard: constructs a brand-new
    /// optimizer whose shards arrive over the wire with their full fp32
    /// Adam state, paired with the survivors' [`SymiOptimizer::reshard`]
    /// over the same `(old, new)` view pair. `step_count` is the
    /// survivors' Adam step counter (carried in the join agreement
    /// payload), so the joiner's bias correction continues exactly where
    /// the cluster is.
    #[allow(clippy::too_many_arguments)]
    pub fn join(
        ctx: &mut RankCtx,
        old_view: &MembershipView,
        new_view: &MembershipView,
        adam: AdamConfig,
        expert_classes: usize,
        param_count: usize,
        step_count: u64,
        tags: TagSpace,
    ) -> Result<(Self, ReshardReport), CommError> {
        let me_phys = ctx.rank();
        assert!(old_view.logical_of(me_phys).is_none(), "a joiner must be new to the old view");
        assert!(new_view.is_alive(me_phys), "the new view must admit the joiner");
        assert!(new_view.epoch() > old_view.epoch(), "join needs a successor view");
        assert!(expert_classes > 0, "need at least one expert class");
        let (shards, report) = grow_exchange(
            ctx,
            old_view,
            new_view,
            me_phys,
            expert_classes,
            param_count,
            adam,
            None,
            step_count,
            tags,
        )?;
        let lrank = new_view.logical_of(me_phys).expect("checked alive");
        Ok((
            Self {
                view: new_view.clone(),
                lrank,
                adam,
                param_count,
                shards,
                telemetry: TelemetryHandle::disabled(),
            },
            report,
        ))
    }

    /// This rank's current fp32 master weights of `class`'s shard (testing
    /// and checkpoint support).
    pub fn master_shard(&self, class: usize) -> &[f32] {
        self.shards[class].master_weights()
    }
}

/// The wire exchange both sides of a grow re-shard share: walk the
/// [`grow_plan`] (identical on every member), send each shed slice's
/// `[master | m | v]` triple per class, receive each acquired slice's, and
/// assemble the new chunk — kept overlap copied locally for survivors,
/// everything else filled from the wire. `old_shards` is `None` on the
/// joiner, whose old chunk is empty and whose Adam step counter comes from
/// `t_join`.
#[allow(clippy::too_many_arguments)]
fn grow_exchange(
    ctx: &mut RankCtx,
    old_view: &MembershipView,
    new_view: &MembershipView,
    me_phys: usize,
    expert_classes: usize,
    param_count: usize,
    adam: AdamConfig,
    old_shards: Option<&[AdamShard]>,
    t_join: u64,
    tags: TagSpace,
) -> Result<(Vec<AdamShard>, ReshardReport), CommError> {
    let e = expert_classes;
    let new_n = new_view.size();
    let new_l = new_view.logical_of(me_phys).expect("a grow keeps every member");
    let (ns, ne) = chunk_range(param_count, new_n, new_l);
    let old_span =
        old_view.logical_of(me_phys).map(|l| chunk_range(param_count, old_view.size(), l));
    ctx.begin_epoch(tags.iteration(), WirePhase::WeightDistribute);
    let plan = grow_plan(old_view, new_view, param_count);

    // Per-destination piece counters give every wire message a unique step
    // field; every member walks the identical plan, so the counters agree
    // by construction. Distinct destinations are distinct receive channels,
    // so counters never collide across them.
    let mut piece_idx: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for piece in &plan {
        let idx = piece_idx.entry(piece.dst).or_insert(0);
        let k = *idx;
        *idx += 1;
        let len = piece.end - piece.start;
        if piece.src == me_phys {
            let (os, _) = old_span.expect("a source rank owned its old chunk");
            let shards = old_shards.expect("a source rank has old shards");
            let r = piece.start - os..piece.end - os;
            for (class, sh) in shards.iter().enumerate() {
                let tag = with_step(tags.tag(WirePhase::WeightDistribute, class, me_phys), k);
                let (m, v) = sh.moments();
                let mut buf = Vec::with_capacity(3 * len);
                buf.extend_from_slice(&sh.master_weights()[r.clone()]);
                buf.extend_from_slice(&m[r.clone()]);
                buf.extend_from_slice(&v[r.clone()]);
                sends.push(SendOp::new(piece.dst, tag, buf));
            }
        } else if piece.dst == me_phys {
            for class in 0..e {
                let tag = with_step(tags.tag(WirePhase::WeightDistribute, class, piece.src), k);
                recvs.push(RecvOp::sized(piece.src, tag, 3 * len));
            }
        }
    }
    let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();

    // Per-class (master, m, v, step) accumulators for this rank's new chunk.
    type ShardParts = (Vec<f32>, Vec<f32>, Vec<f32>, u64);
    let new_len = ne - ns;
    let mut report = ReshardReport::default();
    let mut new_shards: Vec<ShardParts> = (0..e)
        .map(|class| {
            let t = old_shards.map_or(t_join, |sh| sh[class].step_count());
            (vec![0.0f32; new_len], vec![0.0f32; new_len], vec![0.0f32; new_len], t)
        })
        .collect();
    if let (Some((os, oe)), Some(shards)) = (old_span, old_shards) {
        let keep = (ns.max(os), ne.min(oe));
        if keep.0 < keep.1 {
            let dst_r = keep.0 - ns..keep.1 - ns;
            let src_r = keep.0 - os..keep.1 - os;
            for (class, sh) in shards.iter().enumerate() {
                let (om, ov) = sh.moments();
                new_shards[class].0[dst_r.clone()]
                    .copy_from_slice(&sh.master_weights()[src_r.clone()]);
                new_shards[class].1[dst_r.clone()].copy_from_slice(&om[src_r.clone()]);
                new_shards[class].2[dst_r.clone()].copy_from_slice(&ov[src_r.clone()]);
                report.kept_params += (keep.1 - keep.0) as u64;
            }
        }
    }
    for piece in plan.iter().filter(|p| p.dst == me_phys) {
        let len = piece.end - piece.start;
        let dst_r = piece.start - ns..piece.end - ns;
        for shard in new_shards.iter_mut() {
            let buf = received.next().expect("one receive per (piece, class)").into_f32()?;
            let (master, rest) = buf.split_at(len);
            let (m, v) = rest.split_at(len);
            shard.0[dst_r.clone()].copy_from_slice(master);
            shard.1[dst_r.clone()].copy_from_slice(m);
            shard.2[dst_r.clone()].copy_from_slice(v);
            report.transferred_params += len as u64;
        }
    }
    let shards = new_shards
        .into_iter()
        .map(|(master, m, v, t)| AdamShard::from_parts(adam, ns, master, m, v, t))
        .collect();
    Ok((shards, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_source_prefers_local() {
        assert_eq!(get_source(&[2, 5, 7], 5), 5);
    }

    #[test]
    fn get_source_round_robins_across_hosts() {
        let hosts = [2usize, 5, 7];
        // Algorithm 2 picks hosts[rank % len] for non-host ranks.
        let picks: Vec<usize> =
            (0..9).filter(|r| !hosts.contains(r)).map(|r| get_source(&hosts, r)).collect();
        assert_eq!(picks, vec![2, 5, 2, 5, 2, 7]);
        // No single host serves everyone (the hotspot §4.3 avoids).
        for &h in &hosts {
            assert!(picks.iter().filter(|&&p| p == h).count() < picks.len());
        }
    }

    #[test]
    fn shards_partition_the_parameter_space() {
        let params = [vec![0.5f32; 103]];
        let mut covered = [false; 103];
        for rank in 0..8 {
            let opt = SymiOptimizer::new(rank, 8, AdamConfig::default(), &params);
            let (a, b) = opt.shard_range();
            for c in covered.iter_mut().take(b).skip(a) {
                assert!(!*c, "overlap at rank {rank}");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every parameter must be sharded somewhere");
    }

    #[test]
    fn state_bytes_are_uniform_across_ranks_and_classes() {
        // §3.3-I: the footprint is EO in total, EO/N per node (±rounding).
        let params: Vec<Vec<f32>> = (0..4).map(|_| vec![0.0f32; 160]).collect();
        let per_rank: Vec<u64> = (0..8)
            .map(|r| SymiOptimizer::new(r, 8, AdamConfig::default(), &params).state_bytes())
            .collect();
        let total: u64 = per_rank.iter().sum();
        assert_eq!(total, 4 * 160 * 16, "EO total");
        let max = per_rank.iter().max().unwrap();
        let min = per_rank.iter().min().unwrap();
        assert!(max - min <= 4 * 16, "uniform within one element per class");
    }

    #[test]
    fn zero_length_shards_are_legal_when_ranks_exceed_params() {
        // 3 parameters over 5 ranks: ranks 3 and 4 own nothing, explicitly.
        let params = [vec![1.0f32, 2.0, 3.0]];
        let mut covered = [false; 3];
        for rank in 0..5 {
            let opt = SymiOptimizer::new(rank, 5, AdamConfig::default(), &params);
            let (a, b) = opt.shard_range();
            if rank >= 3 {
                assert_eq!(a, b, "rank {rank} must own a zero-length shard");
                assert_eq!(opt.state_bytes(), 0);
            }
            for c in covered.iter_mut().take(b).skip(a) {
                assert!(!*c);
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "nonzero shards still partition the space");
    }

    #[test]
    fn shard_state_round_trips_through_export_import() {
        let params: Vec<Vec<f32>> = (0..2).map(|c| vec![c as f32 + 0.5; 40]).collect();
        let mut opt = SymiOptimizer::new(1, 4, AdamConfig::default(), &params);
        let grads: Vec<Vec<f32>> =
            (0..2).map(|_| vec![0.1f32; opt.shard_range().1 - opt.shard_range().0]).collect();
        let _ = opt.step(&grads);
        let states = opt.export_shard_states();
        let restored = SymiOptimizer::from_shard_states(
            MembershipView::full(4),
            1,
            AdamConfig::default(),
            40,
            states.clone(),
        );
        assert_eq!(restored.export_shard_states(), states);
        assert_eq!(restored.master_shard(0), opt.master_shard(0));
    }

    #[test]
    fn grow_plan_covers_exactly_the_new_chunks() {
        let old = MembershipView::partial(4, 3);
        let new = old.with_joined(3).without(&[]); // epoch-bumped grown view
        let p = 29usize;
        let plan = grow_plan(&old, &new, p);
        for dl in 0..4 {
            let phys = new.physical_of(dl);
            let (ns, ne) = chunk_range(p, 4, dl);
            // Kept overlap (empty for the joiner) ∪ acquired pieces must
            // tile the new chunk exactly, each piece sourced from its old
            // owner.
            let (os, oe) = old.logical_of(phys).map(|l| chunk_range(p, 3, l)).unwrap_or((ns, ns));
            let mut covered: Vec<bool> = (ns..ne).map(|i| i >= os && i < oe).collect();
            for piece in plan.iter().filter(|pc| pc.dst == phys) {
                let (ss, se) = chunk_range(p, 3, old.logical_of(piece.src).expect("old owner"));
                assert!(piece.start >= ss && piece.end <= se, "piece outside its source chunk");
                for i in piece.start..piece.end {
                    assert!(!covered[i - ns], "param {i} doubly sourced for dst {phys}");
                    covered[i - ns] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "dst {phys} has holes");
        }
    }

    #[test]
    fn grow_reshard_transfers_full_adam_state_to_the_joiner() {
        use symi_collectives::{Cluster, ClusterSpec};
        const WORLD: usize = 3;
        const ACTIVE: usize = 2;
        const P: usize = 23; // deliberately indivisible by 2 and 3
        const E: usize = 2;
        let params: Vec<Vec<f32>> =
            (0..E).map(|c| (0..P).map(|i| (c * P + i) as f32 * 0.01).collect()).collect();
        let (results, _) = Cluster::run(ClusterSpec::flat(WORLD), {
            let params = params.clone();
            move |ctx| {
                let old = MembershipView::partial(WORLD, ACTIVE);
                let new = old.with_joined(2).without(&[]); // epoch-bumped grown view
                let tags = TagSpace::new(0, 7);
                if ctx.rank() < ACTIVE {
                    let mut opt = SymiOptimizer::with_view(
                        old.clone(),
                        ctx.rank(),
                        AdamConfig::default(),
                        &params,
                    );
                    // Three Adam steps make master, m and v all nonzero.
                    for s in 0..3usize {
                        let (a, b) = opt.shard_range();
                        let grads: Vec<Vec<f32>> = (0..E)
                            .map(|c| {
                                (a..b)
                                    .map(|i| ((c + 1) * (i + 1) * (s + 1)) as f32 * 1e-3)
                                    .collect()
                            })
                            .collect();
                        let _ = opt.step(&grads);
                    }
                    let before = opt.export_shard_states();
                    let report = opt
                        .reshard(
                            ctx,
                            &new,
                            &ExpertPlacement::uniform(E, ACTIVE, 1),
                            &[],
                            &|_| unreachable!("a grow never re-initializes"),
                            tags,
                        )
                        .expect("grow reshard");
                    (before, opt.export_shard_states(), report)
                } else {
                    let (opt, report) =
                        SymiOptimizer::join(ctx, &old, &new, AdamConfig::default(), E, P, 3, tags)
                            .expect("join");
                    (Vec::new(), opt.export_shard_states(), report)
                }
            }
        });
        // The joiner received real state over the wire, and survivors
        // report zero re-initialized params (a grow degrades nothing).
        assert!(results[2].2.transferred_params > 0, "the joiner must receive moments");
        for r in &results {
            assert_eq!(r.2.reinitialized_params, 0, "a grow never re-initializes");
        }
        for class in 0..E {
            // Concatenating the post-grow shards over the 3 new owners must
            // reproduce the pre-grow global state bit-exactly — master
            // weights AND both Adam moments AND the step counter.
            let mut master = Vec::new();
            let mut m = Vec::new();
            let mut v = Vec::new();
            for r in &results {
                let s = &r.1[class];
                assert_eq!(s.t, 3, "Adam step counter must carry over");
                master.extend_from_slice(&s.master);
                m.extend_from_slice(&s.m);
                v.extend_from_slice(&s.v);
            }
            let mut old_master = Vec::new();
            let mut old_m = Vec::new();
            let mut old_v = Vec::new();
            for r in &results[..ACTIVE] {
                let s = &r.0[class];
                old_master.extend_from_slice(&s.master);
                old_m.extend_from_slice(&s.m);
                old_v.extend_from_slice(&s.v);
            }
            assert_eq!(master, old_master, "class {class} master weights changed");
            assert_eq!(m, old_m, "class {class} first moment changed (must transfer, not zero)");
            assert_eq!(v, old_v, "class {class} second moment changed (must transfer, not zero)");
            assert!(m.iter().any(|&x| x != 0.0), "moments must be nontrivial for the test to bite");
        }
    }

    #[test]
    fn reshard_plan_covers_exactly_the_acquired_segments() {
        let old = MembershipView::full(4);
        let new = old.without(&[2]);
        // Uniform placement of 4 classes on 4 ranks × 2 slots: class c is
        // hosted only on rank c, so class 2 is orphaned by rank 2's death.
        let placement = ExpertPlacement::uniform(4, 4, 2);
        let p = 21usize;
        let plan = reshard_plan(&old, &new, &placement, 4, p);
        for class in 0..4 {
            // Every new owner's chunk must be covered by kept ∪ acquired.
            for dl in 0..3 {
                let phys = new.physical_of(dl);
                let (ns, ne) = chunk_range(p, 3, dl);
                let (os, oe) = chunk_range(p, 4, old.logical_of(phys).unwrap());
                let mut covered: Vec<bool> = (ns..ne).map(|i| i >= os && i < oe).collect();
                for piece in plan.iter().filter(|pc| pc.class == class && pc.dst == phys) {
                    for i in piece.start..piece.end {
                        assert!(!covered[i - ns], "class {class} param {i} doubly sourced");
                        covered[i - ns] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "class {class} dst {phys} has holes");
            }
        }
        // Non-orphan classes resolve to the fp16 authority…
        assert!(plan
            .iter()
            .filter(|pc| pc.class != 2)
            .all(|pc| matches!(pc.source, PieceSource::F16Replica { .. })));
        // …the orphan class falls back to fp32 masters or re-init, and the
        // dead rank's own old chunk is exactly the re-initialized part.
        let (ds, de) = chunk_range(p, 4, 2);
        for pc in plan.iter().filter(|pc| pc.class == 2) {
            match pc.source {
                PieceSource::Reinit => {
                    assert!(pc.start >= ds && pc.end <= de, "re-init outside dead chunk");
                }
                PieceSource::F32Master { src } => assert!(new.is_alive(src)),
                PieceSource::F16Replica { .. } => panic!("orphan class has no fp16 authority"),
            }
        }
        assert!(
            plan.iter().any(|pc| pc.class == 2 && matches!(pc.source, PieceSource::Reinit)),
            "the dead rank's chunk of the orphan class must be re-initialized somewhere"
        );
    }
}
