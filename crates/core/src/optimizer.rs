//! The SYMI Optimizer (§3.2 steps 4–8, §4.3–§4.4).
//!
//! Every node owns the same `1/N` slice of **every** expert's optimizer
//! state — uniform static sharding, never relocated (Appendix A.1 proves
//! this optimal). Each iteration the optimizer:
//!
//! 1. **Grad Communication Phase** (Algorithm 2): collects its gradient
//!    shard for every class — locally when a replica is co-resident,
//!    otherwise from a source replica chosen by round-robin over the
//!    class's host ranks, spreading load so no replica becomes a hotspot.
//! 2. Steps Adam on each shard (host-side; the staging across PCIe is
//!    accounted via the traffic counters).
//! 3. **Weight Communication Phase**: scatters the updated fp16 weight
//!    shards to each slot of the **next** iteration's placement. Because
//!    the slots must receive fresh weights anyway, re-placement is free —
//!    the paper's central claim.

use crate::placement::ExpertPlacement;
use symi_collectives::coll::chunk_range;
use symi_collectives::p2p::{RecvOp, SendOp};
use symi_collectives::{decode_f16_into, encode_f16, CommError, RankCtx, TagSpace, WirePhase};
use symi_telemetry::{Phase, TelemetryHandle};
use symi_tensor::{AdamConfig, AdamShard};

/// Algorithm 2's `get_source`: which host rank serves `for_rank`'s shard
/// of a class hosted on `host_ranks` (ascending).
pub fn get_source(host_ranks: &[usize], for_rank: usize) -> usize {
    debug_assert!(!host_ranks.is_empty(), "class must be hosted somewhere");
    if host_ranks.binary_search(&for_rank).is_ok() {
        return for_rank;
    }
    host_ranks[for_rank % host_ranks.len()]
}

/// Per-rank SYMI optimizer state: one Adam shard per expert class.
pub struct SymiOptimizer {
    rank: usize,
    nodes: usize,
    param_count: usize,
    shards: Vec<AdamShard>,
    telemetry: TelemetryHandle,
}

impl SymiOptimizer {
    /// Initializes this rank's shard of every class from the classes'
    /// initial flat parameters (identical across ranks by construction).
    pub fn new(rank: usize, nodes: usize, adam: AdamConfig, class_params: &[Vec<f32>]) -> Self {
        assert!(!class_params.is_empty(), "need at least one expert class");
        let param_count = class_params[0].len();
        assert!(class_params.iter().all(|p| p.len() == param_count), "uneven expert sizes");
        let (start, end) = chunk_range(param_count, nodes, rank);
        let shards =
            class_params.iter().map(|p| AdamShard::new(adam, start, &p[start..end])).collect();
        Self { rank, nodes, param_count, shards, telemetry: TelemetryHandle::disabled() }
    }

    /// Installs a telemetry handle: the three optimizer phases then time
    /// themselves (GradComm / OptimizerStep / WeightComm spans) and report
    /// the per-rank state footprint as a gauge.
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    /// This rank's shard boundaries within a flat expert parameter vector.
    pub fn shard_range(&self) -> (usize, usize) {
        chunk_range(self.param_count, self.nodes, self.rank)
    }

    pub fn expert_classes(&self) -> usize {
        self.shards.len()
    }

    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Optimizer-state bytes held on this rank (16 B/param accounting).
    pub fn state_bytes(&self) -> u64 {
        self.shards.iter().map(AdamShard::state_bytes).sum()
    }

    /// Grad Communication Phase: every rank ends up with its shard of every
    /// class's (already EDP-synchronized) gradient.
    ///
    /// `local_grads[class]` is `Some(full flat gradient)` iff this rank
    /// hosts a replica of `class` under `placement`. `tags` is the
    /// iteration's structured tag space: every shard travels under
    /// `(GradCollect, class, src)` with exclusive bit fields, and each
    /// receive validates the shard's element count at the wire.
    pub fn collect_grads(
        &self,
        ctx: &mut RankCtx,
        placement: &ExpertPlacement,
        local_grads: &[Option<Vec<f32>>],
        tags: TagSpace,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = self.telemetry.span(Phase::GradComm);
        let e = self.shards.len();
        assert_eq!(local_grads.len(), e, "one (optional) gradient per class");
        let n = self.nodes;
        ctx.begin_epoch(tags.iteration(), WirePhase::GradCollect);

        // Sends: for every class I host, serve the shard of every rank whose
        // get_source picks me.
        let mut sends = Vec::new();
        for (class, maybe_grad) in local_grads.iter().enumerate() {
            let Some(grad) = maybe_grad else { continue };
            let hosts = placement.host_ranks(class);
            debug_assert!(hosts.contains(&self.rank), "have grads only for hosted classes");
            for dst in 0..n {
                if dst == self.rank {
                    continue;
                }
                if get_source(&hosts, dst) == self.rank {
                    let (s, t) = chunk_range(self.param_count, n, dst);
                    sends.push(SendOp::new(
                        dst,
                        tags.tag(WirePhase::GradCollect, class, self.rank),
                        grad[s..t].to_vec(),
                    ));
                }
            }
        }

        // Receives: my shard of every class, locally when possible.
        let (ms, mt) = self.shard_range();
        let mut recvs = Vec::new();
        let mut local_copy: Vec<Option<Vec<f32>>> = vec![None; e];
        for class in 0..e {
            let hosts = placement.host_ranks(class);
            let src = get_source(&hosts, self.rank);
            if src == self.rank {
                let grad = local_grads[class]
                    .as_ref()
                    .expect("get_source returned self, so the class is local");
                local_copy[class] = Some(grad[ms..mt].to_vec());
            } else {
                recvs.push(RecvOp::sized(
                    src,
                    tags.tag(WirePhase::GradCollect, class, src),
                    mt - ms,
                ));
            }
        }
        let retries_before = ctx.protocol_stats().retries;
        let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();
        if self.telemetry.is_enabled() {
            // Retry attempts burned collecting this iteration's shards —
            // the first phase to stutter when a source replica straggles.
            let delta = ctx.protocol_stats().retries - retries_before;
            self.telemetry.gauge("grad_collect_retries").set(delta as f64);
        }

        // Stage every collected shard into host memory (PCIe leg of T_G;
        // gradients stay fp32 — only the weight phase travels fp16).
        let mut out = Vec::with_capacity(e);
        for slot in local_copy {
            let shard = match slot {
                Some(local) => local,
                None => received.next().expect("one receive per remote class").into_f32()?,
            };
            ctx.record_host_device_bytes(shard.len() as u64 * 4);
            out.push(shard);
        }
        Ok(out)
    }

    /// Adam step over every class's shard; returns the updated fp16-rounded
    /// weight shards. Each shard's elementwise update runs in parallel
    /// chunks on the shared worker pool (`symi_tensor::pool`), bit-exact
    /// for any worker count.
    pub fn step(&mut self, grad_shards: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let _span = self.telemetry.span(Phase::OptimizerStep);
        assert_eq!(grad_shards.len(), self.shards.len(), "one gradient shard per class");
        if self.telemetry.is_enabled() {
            self.telemetry.gauge("optimizer_state_bytes").set(self.state_bytes() as f64);
        }
        self.shards.iter_mut().zip(grad_shards).map(|(shard, grad)| shard.step(grad)).collect()
    }

    /// Weight Communication Phase: sends this rank's updated weight shard of
    /// every class to every slot of the *new* placement, and assembles the
    /// full weights for each local slot.
    ///
    /// Returns one flat weight vector per local slot (indexed by local slot
    /// id), ready to load into the physical experts — thereby
    /// *materializing* the new placement with zero extra traffic relative
    /// to a static system's weight update (§3.3-II).
    /// The shards are fp16-quantized by [`SymiOptimizer::step`], so they
    /// travel the wire (and the PCIe staging leg) as 2 B/param
    /// [`Payload::F16`] — half the fp32 width the first-generation
    /// accounting double-counted. Re-encoding is bit-exact because the
    /// values are already on the fp16 grid.
    ///
    /// [`Payload::F16`]: symi_collectives::Payload::F16
    pub fn distribute_weights(
        &self,
        ctx: &mut RankCtx,
        new_placement: &ExpertPlacement,
        weight_shards: &[Vec<f32>],
        tags: TagSpace,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = self.telemetry.span(Phase::WeightComm);
        let n = self.nodes;
        let s = new_placement.slots_per_rank();
        assert_eq!(weight_shards.len(), self.shards.len(), "one weight shard per class");
        assert_eq!(new_placement.ranks(), n, "placement rank count mismatch");
        ctx.begin_epoch(tags.iteration(), WirePhase::WeightDistribute);

        // Narrow once per class (parallel chunks on the shared pool); the
        // shard leaves host memory over PCIe at its true fp16 width
        // (2 B/param).
        let half_shards: Vec<Vec<u16>> =
            weight_shards.iter().map(|shard| encode_f16(shard)).collect();
        for shard in &half_shards {
            ctx.record_host_device_bytes(shard.len() as u64 * 2);
        }

        // Send my shard of slot's class to every slot (self included via
        // mailbox; remote slots via links).
        let mut sends = Vec::new();
        for slot in 0..new_placement.total_slots() {
            let class = new_placement.class_of_slot(slot);
            let host = new_placement.rank_of_slot(slot);
            sends.push(SendOp::new(
                host,
                tags.tag(WirePhase::WeightDistribute, slot, self.rank),
                half_shards[class].clone(),
            ));
        }

        // Receive all N shards for each of my slots, length-checked at the
        // wire against this rank's chunk geometry.
        let mut recvs = Vec::with_capacity(s * n);
        for local in 0..s {
            let slot = self.rank * s + local;
            for src in 0..n {
                let (a, b) = chunk_range(self.param_count, n, src);
                recvs.push(RecvOp::sized(
                    src,
                    tags.tag(WirePhase::WeightDistribute, slot, src),
                    b - a,
                ));
            }
        }
        let retries_before = ctx.protocol_stats().retries;
        let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();
        if self.telemetry.is_enabled() {
            // Retry attempts burned materializing the new placement — a
            // persistent nonzero here under a *healthy* plan would mean
            // ranks disagree about the placement (see engine degradation
            // notes), so it is worth its own gauge.
            let delta = ctx.protocol_stats().retries - retries_before;
            self.telemetry.gauge("weight_distribute_retries").set(delta as f64);
        }

        // Assemble per-slot full weights from the N ordered shards.
        let mut out = Vec::with_capacity(s);
        for _local in 0..s {
            let mut full = vec![0.0f32; self.param_count];
            for src in 0..n {
                let shard = received.next().expect("one receive per (slot, src)").into_f16()?;
                let (a, b) = chunk_range(self.param_count, n, src);
                decode_f16_into(&shard, &mut full[a..b]);
            }
            out.push(full);
        }
        Ok(out)
    }

    /// This rank's current fp32 master weights of `class`'s shard (testing
    /// and checkpoint support).
    pub fn master_shard(&self, class: usize) -> &[f32] {
        self.shards[class].master_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_source_prefers_local() {
        assert_eq!(get_source(&[2, 5, 7], 5), 5);
    }

    #[test]
    fn get_source_round_robins_across_hosts() {
        let hosts = [2usize, 5, 7];
        // Algorithm 2 picks hosts[rank % len] for non-host ranks.
        let picks: Vec<usize> =
            (0..9).filter(|r| !hosts.contains(r)).map(|r| get_source(&hosts, r)).collect();
        assert_eq!(picks, vec![2, 5, 2, 5, 2, 7]);
        // No single host serves everyone (the hotspot §4.3 avoids).
        for &h in &hosts {
            assert!(picks.iter().filter(|&&p| p == h).count() < picks.len());
        }
    }

    #[test]
    fn shards_partition_the_parameter_space() {
        let params = [vec![0.5f32; 103]];
        let mut covered = [false; 103];
        for rank in 0..8 {
            let opt = SymiOptimizer::new(rank, 8, AdamConfig::default(), &params);
            let (a, b) = opt.shard_range();
            for c in covered.iter_mut().take(b).skip(a) {
                assert!(!*c, "overlap at rank {rank}");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every parameter must be sharded somewhere");
    }

    #[test]
    fn state_bytes_are_uniform_across_ranks_and_classes() {
        // §3.3-I: the footprint is EO in total, EO/N per node (±rounding).
        let params: Vec<Vec<f32>> = (0..4).map(|_| vec![0.0f32; 160]).collect();
        let per_rank: Vec<u64> = (0..8)
            .map(|r| SymiOptimizer::new(r, 8, AdamConfig::default(), &params).state_bytes())
            .collect();
        let total: u64 = per_rank.iter().sum();
        assert_eq!(total, 4 * 160 * 16, "EO total");
        let max = per_rank.iter().max().unwrap();
        let min = per_rank.iter().min().unwrap();
        assert!(max - min <= 4 * 16, "uniform within one element per class");
    }
}
