//! The Layer Metadata Store (§3.2 step 1).
//!
//! After the router's tiny popularity all-reduce, every rank holds the same
//! globally consistent token counts per expert class. The store keeps a
//! bounded history of them per layer — the Expert Placement Scheduler reads
//! the latest entry, and richer policies (EMA, windowed prediction) can read
//! deeper.

use std::collections::VecDeque;

/// Bounded per-layer history of globally consistent popularity counters.
#[derive(Clone, Debug)]
pub struct LayerMetadataStore {
    history: Vec<VecDeque<Vec<u64>>>,
    capacity: usize,
}

impl LayerMetadataStore {
    /// A store for `layers` layers keeping the last `capacity` iterations.
    pub fn new(layers: usize, capacity: usize) -> Self {
        assert!(capacity >= 1, "store must keep at least the latest iteration");
        Self { history: vec![VecDeque::new(); layers], capacity }
    }

    pub fn layers(&self) -> usize {
        self.history.len()
    }

    /// Records this iteration's popularity for `layer`.
    pub fn record(&mut self, layer: usize, popularity: Vec<u64>) {
        let h = &mut self.history[layer];
        if let Some(prev) = h.back() {
            assert_eq!(prev.len(), popularity.len(), "expert count changed mid-training");
        }
        if h.len() == self.capacity {
            h.pop_front();
        }
        h.push_back(popularity);
    }

    /// The most recent popularity for `layer`, if any iteration has run.
    pub fn latest(&self, layer: usize) -> Option<&[u64]> {
        self.history[layer].back().map(Vec::as_slice)
    }

    /// Popularity `k` iterations ago (0 = latest).
    pub fn lookback(&self, layer: usize, k: usize) -> Option<&[u64]> {
        let h = &self.history[layer];
        h.len().checked_sub(1 + k).map(|i| h[i].as_slice())
    }

    /// Exponential moving average of popularity with decay `alpha`
    /// (building block for the predictive policies of §6).
    pub fn ema(&self, layer: usize, alpha: f64) -> Option<Vec<f64>> {
        let h = &self.history[layer];
        let first = h.front()?;
        let mut ema: Vec<f64> = first.iter().map(|&v| v as f64).collect();
        for row in h.iter().skip(1) {
            for (e, &v) in ema.iter_mut().zip(row) {
                *e = alpha * v as f64 + (1.0 - alpha) * *e;
            }
        }
        Some(ema)
    }

    /// Iterations recorded for `layer` (≤ capacity).
    pub fn len(&self, layer: usize) -> usize {
        self.history[layer].len()
    }

    pub fn is_empty(&self, layer: usize) -> bool {
        self.history[layer].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_and_lookback() {
        let mut s = LayerMetadataStore::new(2, 4);
        s.record(0, vec![1, 2]);
        s.record(0, vec![3, 4]);
        assert_eq!(s.latest(0), Some(&[3, 4][..]));
        assert_eq!(s.lookback(0, 1), Some(&[1, 2][..]));
        assert_eq!(s.lookback(0, 2), None);
        assert!(s.latest(1).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = LayerMetadataStore::new(1, 2);
        s.record(0, vec![1]);
        s.record(0, vec![2]);
        s.record(0, vec![3]);
        assert_eq!(s.len(0), 2);
        assert_eq!(s.lookback(0, 1), Some(&[2u64][..]));
    }

    #[test]
    fn ema_weights_recent_iterations() {
        let mut s = LayerMetadataStore::new(1, 8);
        s.record(0, vec![0]);
        s.record(0, vec![100]);
        let ema = s.ema(0, 0.5).unwrap();
        assert!((ema[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "expert count changed")]
    fn ragged_record_rejected() {
        let mut s = LayerMetadataStore::new(1, 2);
        s.record(0, vec![1, 2]);
        s.record(0, vec![1]);
    }
}
