//! The expert-placement data model: slot↔class maps and per-class host
//! ranks.

/// A global expert placement: which class occupies each of the `sN` slots.
///
/// Slots are numbered globally; slot `k` lives on rank `k / slots_per_rank`.
/// SYMI placements are contiguous by construction (Algorithm 1), which this
/// type verifies so the contiguous-group optimization of §4.2 is always
/// sound.
///
/// ```
/// use symi::ExpertPlacement;
///
/// // 2 classes over 2 ranks × 2 slots; class 0 holds 3 replicas.
/// let p = ExpertPlacement::from_counts(&[3, 1], 2);
/// assert_eq!(p.host_ranks(0), vec![0, 1]);
/// assert_eq!(p.host_range(1), (1, 1));
/// assert!(p.rank_hosts(0, 0) && !p.rank_hosts(0, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpertPlacement {
    slot_class: Vec<usize>,
    slots_per_rank: usize,
    expert_classes: usize,
}

impl ExpertPlacement {
    /// Builds a placement from replica counts (contiguous assignment).
    pub fn from_counts(counts: &[usize], slots_per_rank: usize) -> Self {
        let slot_class = crate::scheduler::contiguous_assignment(counts);
        assert_eq!(slot_class.len() % slots_per_rank, 0, "slots must tile ranks exactly");
        Self { slot_class, slots_per_rank, expert_classes: counts.len() }
    }

    /// Uniform static placement (`r = sN/E` replicas each).
    pub fn uniform(expert_classes: usize, ranks: usize, slots_per_rank: usize) -> Self {
        let total = ranks * slots_per_rank;
        assert_eq!(total % expert_classes, 0, "uniform placement must divide");
        Self::from_counts(&vec![total / expert_classes; expert_classes], slots_per_rank)
    }

    pub fn total_slots(&self) -> usize {
        self.slot_class.len()
    }

    pub fn ranks(&self) -> usize {
        self.slot_class.len() / self.slots_per_rank
    }

    pub fn slots_per_rank(&self) -> usize {
        self.slots_per_rank
    }

    pub fn expert_classes(&self) -> usize {
        self.expert_classes
    }

    /// Class hosted in global slot `k`.
    pub fn class_of_slot(&self, slot: usize) -> usize {
        self.slot_class[slot]
    }

    /// Rank hosting global slot `k`.
    pub fn rank_of_slot(&self, slot: usize) -> usize {
        slot / self.slots_per_rank
    }

    /// Global slot ids on `rank`.
    pub fn slots_of_rank(&self, rank: usize) -> std::ops::Range<usize> {
        rank * self.slots_per_rank..(rank + 1) * self.slots_per_rank
    }

    /// Classes hosted on `rank`, with their local slot offsets.
    pub fn classes_on_rank(&self, rank: usize) -> Vec<(usize, Vec<usize>)> {
        let mut out: Vec<(usize, Vec<usize>)> = Vec::new();
        for (local, slot) in self.slots_of_rank(rank).enumerate() {
            let class = self.slot_class[slot];
            match out.iter_mut().find(|(c, _)| *c == class) {
                Some((_, locals)) => locals.push(local),
                None => out.push((class, vec![local])),
            }
        }
        out
    }

    /// Replica count per class.
    pub fn replica_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.expert_classes];
        for &c in &self.slot_class {
            counts[c] += 1;
        }
        counts
    }

    /// Global slot ids hosting `class`.
    pub fn slots_of_class(&self, class: usize) -> Vec<usize> {
        (0..self.total_slots()).filter(|&k| self.slot_class[k] == class).collect()
    }

    /// The distinct ranks hosting `class`, ascending.
    pub fn host_ranks(&self, class: usize) -> Vec<usize> {
        let mut ranks = Vec::new();
        for slot in self.slots_of_class(class) {
            let r = self.rank_of_slot(slot);
            if ranks.last() != Some(&r) {
                ranks.push(r);
            }
        }
        ranks
    }

    /// The contiguous rank range `(start, len)` hosting `class`.
    ///
    /// # Panics
    /// Panics if the class's hosts are not contiguous (cannot happen for
    /// placements built by [`ExpertPlacement::from_counts`]).
    pub fn host_range(&self, class: usize) -> (usize, usize) {
        let ranks = self.host_ranks(class);
        assert!(!ranks.is_empty(), "class {class} is not placed anywhere");
        let start = ranks[0];
        let len = ranks.len();
        assert!(
            ranks.windows(2).all(|w| w[1] == w[0] + 1),
            "class {class} hosts are not contiguous"
        );
        (start, len)
    }

    /// Whether `rank` hosts at least one replica of `class`.
    pub fn rank_hosts(&self, rank: usize, class: usize) -> bool {
        self.slots_of_rank(rank).any(|s| self.slot_class[s] == class)
    }

    /// Number of slots whose class assignment differs from `other` — the
    /// volume a *coupled* system would migrate, and zero-extra-cost for
    /// SYMI (§3.3).
    pub fn diff_slots(&self, other: &ExpertPlacement) -> usize {
        assert_eq!(self.total_slots(), other.total_slots(), "placement shape mismatch");
        self.slot_class.iter().zip(&other.slot_class).filter(|(a, b)| a != b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_placement_shape() {
        let p = ExpertPlacement::uniform(4, 4, 2); // 8 slots, r = 2
        assert_eq!(p.replica_counts(), vec![2, 2, 2, 2]);
        assert_eq!(p.class_of_slot(0), 0);
        assert_eq!(p.class_of_slot(7), 3);
        assert_eq!(p.ranks(), 4);
    }

    #[test]
    fn classes_on_rank_groups_local_slots() {
        // counts [3, 1] over 2 ranks × 2 slots: rank0 = [0,0], rank1 = [0,1].
        let p = ExpertPlacement::from_counts(&[3, 1], 2);
        assert_eq!(p.classes_on_rank(0), vec![(0, vec![0, 1])]);
        assert_eq!(p.classes_on_rank(1), vec![(0, vec![0]), (1, vec![1])]);
    }

    #[test]
    fn host_range_is_contiguous() {
        let p = ExpertPlacement::from_counts(&[3, 1], 2);
        assert_eq!(p.host_range(0), (0, 2));
        assert_eq!(p.host_range(1), (1, 1));
    }

    #[test]
    fn host_ranks_dedupes() {
        let p = ExpertPlacement::from_counts(&[4, 2, 2], 4); // 8 slots, 2 ranks
        assert_eq!(p.host_ranks(0), vec![0]);
        assert_eq!(p.host_ranks(1), vec![1]);
        assert_eq!(p.host_ranks(2), vec![1]);
    }

    #[test]
    fn diff_counts_changed_slots() {
        let a = ExpertPlacement::from_counts(&[2, 2], 2);
        let b = ExpertPlacement::from_counts(&[3, 1], 2);
        assert_eq!(a.diff_slots(&b), 1);
        assert_eq!(a.diff_slots(&a), 0);
    }

    #[test]
    fn rank_hosts_checks_membership() {
        let p = ExpertPlacement::from_counts(&[2, 2], 2);
        assert!(p.rank_hosts(0, 0));
        assert!(!p.rank_hosts(0, 1));
        assert!(p.rank_hosts(1, 1));
    }

    #[test]
    #[should_panic(expected = "tile ranks exactly")]
    fn uneven_slot_total_rejected() {
        let _ = ExpertPlacement::from_counts(&[2, 1], 2);
    }
}
