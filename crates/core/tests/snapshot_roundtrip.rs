//! Property test: `EngineSnapshot` → `MoeLayerEngine::from_snapshot` →
//! `snapshot()` is the identity, bit-for-bit, over random geometries and
//! adversarial fp32 payloads (NaNs with varied payload bits, denormals,
//! infinities, signed zeros). This is the in-memory half of the checkpoint
//! restart contract: what `symi-checkpoint` writes is exactly what a
//! restarted engine reports, so the disk format tests compose with this one
//! into end-to-end bit-exactness.

use symi::{EngineConfig, EngineSnapshot, MoeLayerEngine, ShardState};
use symi_collectives::coll::chunk_range;
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::AdamConfig;

/// Adversarial fp32: ordinary values mixed with every IEEE edge the Adam
/// state can reach (overflowed moments, flushed denormals, NaN payloads).
fn hostile_f32(rng: &mut StdRng) -> f32 {
    match rng.gen_range(0..8usize) {
        0 => f32::NAN,
        1 => f32::from_bits(0x7FC0_0001 | (rng.next_u64() as u32 & 0x003F_FFFF)), // NaN, random payload
        2 => f32::from_bits(rng.gen_range(1..0x0080_0000u64) as u32),             // denormal
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => -0.0,
        6 => (rng.next_u64() as f32 / u64::MAX as f32) * 2e30 - 1e30,
        _ => (rng.next_u64() as f32 / u64::MAX as f32) * 4.0 - 2.0,
    }
}

fn random_case(rng: &mut StdRng) -> (EngineConfig, EngineSnapshot) {
    let world = rng.gen_range(1..5usize);
    let expert_classes = rng.gen_range(1..5usize);
    // total_slots = world * slots_per_rank must cover every class at least
    // once.
    let slots_per_rank = expert_classes.div_ceil(world) + rng.gen_range(0..3usize);
    let total_slots = world * slots_per_rank;
    let logical_rank = rng.gen_range(0..world);
    let cfg = EngineConfig {
        d_model: rng.gen_range(2..8usize),
        d_ff: rng.gen_range(2..12usize),
        expert_classes,
        slots_per_rank,
        slot_capacity: rng.gen_range(1..1_000_000usize),
        adam: AdamConfig { lr: 3e-3, ..AdamConfig::default() },
        seed: rng.next_u64(),
        layer_id: rng.gen_range(0..8usize),
    };

    // Random valid placement: every class ≥ 1 replica, slots exactly filled.
    let mut replica_counts = vec![1usize; expert_classes];
    for _ in 0..(total_slots - expert_classes) {
        replica_counts[rng.gen_range(0..expert_classes)] += 1;
    }

    let param_count = cfg.d_model * cfg.d_ff + cfg.d_ff + cfg.d_ff * cfg.d_model + cfg.d_model;
    let (start, end) = chunk_range(param_count, world, logical_rank);
    let len = end - start;
    let shards = (0..expert_classes)
        .map(|_| ShardState {
            offset: start,
            master: (0..len).map(|_| hostile_f32(rng)).collect(),
            m: (0..len).map(|_| hostile_f32(rng)).collect(),
            v: (0..len).map(|_| hostile_f32(rng)).collect(),
            t: rng.next_u64() >> 40,
        })
        .collect();

    let popularity = if rng.gen_range(0..3usize) > 0 {
        Some((0..expert_classes).map(|_| rng.next_u64() >> 20).collect())
    } else {
        None
    };

    let snap = EngineSnapshot {
        iteration: rng.gen_range(0..200_000u64),
        world_size: world,
        logical_rank,
        replica_counts,
        popularity,
        shards,
    };
    (cfg, snap)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn from_snapshot_then_snapshot_is_the_bitwise_identity() {
    let mut rng = StdRng::seed_from_u64(0xC4E7);
    for case in 0..128 {
        let (cfg, snap) = random_case(&mut rng);
        let engine = MoeLayerEngine::from_snapshot(cfg, snap.clone());

        assert_eq!(engine.iteration_count(), snap.iteration, "case {case}");
        assert_eq!(engine.logical_rank(), snap.logical_rank, "case {case}");
        assert_eq!(engine.config().seed, cfg.seed, "case {case}");

        let back = engine.snapshot();
        assert_eq!(back.iteration, snap.iteration, "case {case}");
        assert_eq!(back.world_size, snap.world_size, "case {case}");
        assert_eq!(back.logical_rank, snap.logical_rank, "case {case}");
        assert_eq!(back.replica_counts, snap.replica_counts, "case {case}");
        assert_eq!(back.popularity, snap.popularity, "case {case}");
        assert_eq!(back.shards.len(), snap.shards.len(), "case {case}");
        for (class, (a, b)) in back.shards.iter().zip(&snap.shards).enumerate() {
            assert_eq!(a.offset, b.offset, "case {case} class {class}");
            assert_eq!(a.t, b.t, "case {case} class {class}");
            // NaN != NaN under float compare; the contract is *bitwise*.
            assert_eq!(bits(&a.master), bits(&b.master), "case {case} class {class} master");
            assert_eq!(bits(&a.m), bits(&b.m), "case {case} class {class} m");
            assert_eq!(bits(&a.v), bits(&b.v), "case {case} class {class} v");
        }
    }
}

#[test]
fn restored_engine_preserves_snapshot_under_repeated_round_trips() {
    // from_snapshot → snapshot → from_snapshot → … must be a fixed point,
    // not merely idempotent-once (guards against lossy normalization that
    // happens to cancel on the first hop).
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..16 {
        let (cfg, snap) = random_case(&mut rng);
        let mut current = snap.clone();
        for hop in 0..3 {
            let engine = MoeLayerEngine::from_snapshot(cfg, current.clone());
            let next = engine.snapshot();
            assert_eq!(next.replica_counts, current.replica_counts, "hop {hop}");
            for (a, b) in next.shards.iter().zip(&current.shards) {
                assert_eq!(bits(&a.master), bits(&b.master), "hop {hop}");
                assert_eq!(bits(&a.m), bits(&b.m), "hop {hop}");
                assert_eq!(bits(&a.v), bits(&b.v), "hop {hop}");
            }
            current = next;
        }
    }
}
