//! Randomized property tests for the SYMI core: Algorithm 1's invariants
//! must hold for any popularity vector, and the placement data model must
//! stay self-consistent. Driven by `symi_tensor::rng` with fixed seeds.

use symi::optimizer::get_source;
use symi::{compute_placement, ExpertPlacement};
use symi_tensor::rng::{Rng, StdRng};

fn random_popularity(rng: &mut StdRng, len: usize, max: u64) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

#[test]
fn placement_fills_slots_exactly_with_floor() {
    let mut rng = StdRng::seed_from_u64(301);
    for _ in 0..64 {
        let e = rng.gen_range(1..32usize);
        let slots_mult = rng.gen_range(1..8usize);
        let popularity = random_popularity(&mut rng, e, 100_000);
        let total_slots = e * slots_mult;
        let counts = compute_placement(&popularity, total_slots);
        assert_eq!(counts.len(), e);
        assert_eq!(counts.iter().sum::<usize>(), total_slots);
        assert!(counts.iter().all(|&c| c >= 1));
    }
}

#[test]
fn placement_never_panics_on_adversarial_inputs() {
    // The rebalance phase feeds compute_placement whatever the popularity
    // all-reduce produced — including an all-zero vector at iteration 0 and,
    // under fault injection, stale or extreme counts. The scheduler must
    // keep its invariants (exact fill, ≥1 replica per class) for every
    // input that satisfies its documented preconditions, and never panic.
    let mut rng = StdRng::seed_from_u64(306);
    for case in 0..512 {
        let e = rng.gen_range(1..64usize);
        let total_slots = e + rng.gen_range(0..(e * 7 + 1));
        let popularity: Vec<u64> = (0..e)
            .map(|_| match rng.gen_range(0..4usize) {
                0 => 0,
                1 => rng.gen_range(0..100u64),
                2 => rng.gen_range(0..1_000_000_000u64),
                _ => u64::MAX - rng.gen_range(0..3u64),
            })
            .collect();
        let counts = compute_placement(&popularity, total_slots);
        assert_eq!(counts.len(), e, "case {case}");
        assert_eq!(counts.iter().sum::<usize>(), total_slots, "case {case}");
        assert!(counts.iter().all(|&c| c >= 1), "case {case}");
    }
    // The spec's exact edge cases: no signal at all, and the tightest
    // possible slot budget (total_slots == e forces exactly one each).
    for e in [1usize, 2, 7, 32] {
        let counts = compute_placement(&vec![0u64; e], e);
        assert_eq!(counts, vec![1usize; e], "total_pop == 0 with minimal slots");
        let counts = compute_placement(&vec![u64::MAX; e], e);
        assert_eq!(counts, vec![1usize; e], "saturating demand with minimal slots");
    }
}

#[test]
fn more_popular_classes_never_get_fewer_replicas() {
    let mut rng = StdRng::seed_from_u64(302);
    for _ in 0..64 {
        let e = rng.gen_range(2..16usize);
        let popularity = random_popularity(&mut rng, e, 100_000);
        let counts = compute_placement(&popularity, e * 4);
        for i in 0..e {
            for j in 0..e {
                // Strictly greater popularity must give at least as many
                // replicas (up to the ±1 rounding-correction wiggle).
                if popularity[i] > popularity[j] {
                    assert!(
                        counts[i] + 1 >= counts[j],
                        "pop {} > {} but replicas {} < {} - 1",
                        popularity[i],
                        popularity[j],
                        counts[i],
                        counts[j]
                    );
                }
            }
        }
    }
}

#[test]
fn placement_roundtrips_counts() {
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..64 {
        let e = rng.gen_range(2..12usize);
        let s = rng.gen_range(1..5usize);
        let popularity: Vec<u64> = (0..e).map(|_| rng.gen_range(1..10_000u64)).collect();
        // Choose a slot total that tiles ranks exactly.
        let total_slots = (e * 3).div_ceil(s) * s;
        let counts = compute_placement(&popularity, total_slots);
        let placement = ExpertPlacement::from_counts(&counts, s);
        assert_eq!(placement.replica_counts(), counts);
        // Host ranges are contiguous and cover every class.
        for class in 0..e {
            let (start, len) = placement.host_range(class);
            assert!(len >= 1);
            assert!(start + len <= placement.ranks());
            assert_eq!(placement.host_ranks(class).len(), len);
        }
    }
}

#[test]
fn diff_is_a_metric_like_count() {
    let mut rng = StdRng::seed_from_u64(304);
    for _ in 0..64 {
        let a: Vec<u64> = (0..4).map(|_| rng.gen_range(1..1000u64)).collect();
        let b: Vec<u64> = (0..4).map(|_| rng.gen_range(1..1000u64)).collect();
        let ca = compute_placement(&a, 16);
        let cb = compute_placement(&b, 16);
        let pa = ExpertPlacement::from_counts(&ca, 4);
        let pb = ExpertPlacement::from_counts(&cb, 4);
        assert_eq!(pa.diff_slots(&pa), 0);
        assert_eq!(pa.diff_slots(&pb), pb.diff_slots(&pa));
        assert!(pa.diff_slots(&pb) <= 16);
    }
}

#[test]
fn get_source_always_returns_a_host() {
    let mut rng = StdRng::seed_from_u64(305);
    for _ in 0..128 {
        let n_hosts = rng.gen_range(1..10usize);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n_hosts {
            set.insert(rng.gen_range(0..64usize));
        }
        let hosts: Vec<usize> = set.into_iter().collect();
        let rank = rng.gen_range(0..64usize);
        let src = get_source(&hosts, rank);
        assert!(hosts.contains(&src));
        if hosts.contains(&rank) {
            assert_eq!(src, rank, "local replicas must be preferred");
        }
    }
}
