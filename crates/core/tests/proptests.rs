//! Property-based tests for the SYMI core: Algorithm 1's invariants must
//! hold for any popularity vector, and the placement data model must stay
//! self-consistent.

use proptest::prelude::*;
use symi::optimizer::get_source;
use symi::{compute_placement, ExpertPlacement};

proptest! {
    #[test]
    fn placement_fills_slots_exactly_with_floor(
        popularity in prop::collection::vec(0u64..100_000, 1..32),
        slots_mult in 1usize..8,
    ) {
        let e = popularity.len();
        let total_slots = e * slots_mult;
        let counts = compute_placement(&popularity, total_slots);
        prop_assert_eq!(counts.len(), e);
        prop_assert_eq!(counts.iter().sum::<usize>(), total_slots);
        prop_assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn more_popular_classes_never_get_fewer_replicas(
        popularity in prop::collection::vec(0u64..100_000, 2..16),
    ) {
        let e = popularity.len();
        let counts = compute_placement(&popularity, e * 4);
        for i in 0..e {
            for j in 0..e {
                // Strictly greater popularity must give at least as many
                // replicas (up to the ±1 rounding-correction wiggle).
                if popularity[i] > popularity[j] {
                    prop_assert!(
                        counts[i] + 1 >= counts[j],
                        "pop {} > {} but replicas {} < {} - 1",
                        popularity[i], popularity[j], counts[i], counts[j]
                    );
                }
            }
        }
    }

    #[test]
    fn placement_roundtrips_counts(
        popularity in prop::collection::vec(1u64..10_000, 2..12),
        s in 1usize..5,
    ) {
        let e = popularity.len();
        // Choose a slot total that tiles ranks exactly.
        let total_slots = (e * 3).div_ceil(s) * s;
        let counts = compute_placement(&popularity, total_slots);
        let placement = ExpertPlacement::from_counts(&counts, s);
        prop_assert_eq!(placement.replica_counts(), counts.clone());
        // Host ranges are contiguous and cover every class.
        for class in 0..e {
            let (start, len) = placement.host_range(class);
            prop_assert!(len >= 1);
            prop_assert!(start + len <= placement.ranks());
            prop_assert_eq!(placement.host_ranks(class).len(), len);
        }
    }

    #[test]
    fn diff_is_a_metric_like_count(
        a in prop::collection::vec(1u64..1000, 4),
        b in prop::collection::vec(1u64..1000, 4),
    ) {
        let ca = compute_placement(&a, 16);
        let cb = compute_placement(&b, 16);
        let pa = ExpertPlacement::from_counts(&ca, 4);
        let pb = ExpertPlacement::from_counts(&cb, 4);
        prop_assert_eq!(pa.diff_slots(&pa), 0);
        prop_assert_eq!(pa.diff_slots(&pb), pb.diff_slots(&pa));
        prop_assert!(pa.diff_slots(&pb) <= 16);
    }

    #[test]
    fn get_source_always_returns_a_host(
        hosts in prop::collection::btree_set(0usize..64, 1..10),
        rank in 0usize..64,
    ) {
        let hosts: Vec<usize> = hosts.into_iter().collect();
        let src = get_source(&hosts, rank);
        prop_assert!(hosts.contains(&src));
        if hosts.contains(&rank) {
            prop_assert_eq!(src, rank, "local replicas must be preferred");
        }
    }
}
