//! Expert-popularity traces: recording, statistics, serialization, and a
//! synthetic generator for latency-only experiments.

use symi_tensor::rng::{Distribution, Rng, StdRng};

/// A per-iteration record of how many tokens the router assigned to each
/// expert class. This is exactly the content of SYMI's Layer Metadata Store
/// over time, and the raw material for Figures 2, 9 and 10.
///
/// ```
/// use symi_workload::PopularityTrace;
///
/// let mut trace = PopularityTrace::new();
/// trace.push(vec![90, 10]);
/// trace.push(vec![5, 95]);
/// // Expert 0 collapsed 18x within 2 iterations (Figure 2's phenomenon):
/// assert!(trace.max_shift_within(2) >= 18.0);
/// assert_eq!(trace.series(1), vec![10, 95]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PopularityTrace {
    /// `iterations[t][e]` = tokens routed to class `e` at iteration `t`.
    pub iterations: Vec<Vec<u64>>,
}

impl PopularityTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, counts: Vec<u64>) {
        if let Some(first) = self.iterations.first() {
            assert_eq!(first.len(), counts.len(), "expert count changed mid-trace");
        }
        self.iterations.push(counts);
    }

    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    pub fn expert_classes(&self) -> usize {
        self.iterations.first().map_or(0, Vec::len)
    }

    /// Popularity of one expert over time.
    pub fn series(&self, expert: usize) -> Vec<u64> {
        self.iterations.iter().map(|it| it[expert]).collect()
    }

    /// The largest multiplicative popularity swing any expert exhibits
    /// within a window of `k` iterations — Figure 2's ">16× within 3
    /// iterations" statistic. Zero counts are clamped to 1 to keep the
    /// ratio finite.
    pub fn max_shift_within(&self, k: usize) -> f64 {
        let e = self.expert_classes();
        let mut worst = 1.0f64;
        for t in 0..self.iterations.len() {
            let hi = (t + k).min(self.iterations.len());
            for exp in 0..e {
                let a = self.iterations[t][exp].max(1) as f64;
                for row in &self.iterations[t + 1..hi] {
                    let b = row[exp].max(1) as f64;
                    worst = worst.max(a / b).max(b / a);
                }
            }
        }
        worst
    }

    /// Normalized popularity (fraction of the iteration's tokens) for one
    /// iteration.
    pub fn normalized(&self, t: usize) -> Vec<f64> {
        let total: u64 = self.iterations[t].iter().sum();
        let denom = total.max(1) as f64;
        self.iterations[t].iter().map(|&c| c as f64 / denom).collect()
    }

    /// JSON serialization for the bench harness. Schema matches the old
    /// serde output: `{"iterations":[[..],[..]]}`.
    pub fn to_json_value(&self) -> symi_telemetry::Value {
        use symi_telemetry::json::{Obj, Value};
        let mut o = Obj::new();
        o.set(
            "iterations",
            Value::Arr(self.iterations.iter().map(|row| Value::arr_u64(row)).collect()),
        );
        Value::Obj(o)
    }

    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    pub fn from_json_value(v: &symi_telemetry::Value) -> Result<Self, String> {
        let rows = v.get("iterations").as_arr().ok_or("missing iterations")?;
        Ok(Self { iterations: rows.iter().map(|row| row.u64_vec()).collect() })
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        Self::from_json_value(&symi_telemetry::Value::parse(s)?)
    }
}

/// Configuration for synthetic popularity traces (used by latency benches
/// that don't need a real training run).
#[derive(Clone, Copy, Debug)]
pub struct SyntheticTraceConfig {
    pub expert_classes: usize,
    pub iterations: usize,
    pub tokens_per_iteration: u64,
    /// Zipf exponent of the average popularity ranking.
    pub zipf: f64,
    /// Log-space random-walk scale per iteration.
    pub drift_sigma: f64,
    /// Probability of a jolt (sudden rank reshuffle of two experts).
    pub jolt_prob: f64,
    pub seed: u64,
}

impl Default for SyntheticTraceConfig {
    fn default() -> Self {
        Self {
            expert_classes: 16,
            iterations: 200,
            tokens_per_iteration: 512 * 64,
            zipf: 1.1,
            drift_sigma: 0.12,
            jolt_prob: 0.03,
            seed: 7,
        }
    }
}

impl SyntheticTraceConfig {
    /// Generates a skewed, drifting popularity trace.
    pub fn generate(&self) -> PopularityTrace {
        assert!(self.expert_classes >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let normal = symi_tensor::rng::Normal::new(0.0f64, self.drift_sigma).expect("finite sigma");
        let mut logits: Vec<f64> =
            (0..self.expert_classes).map(|i| -self.zipf * ((i + 1) as f64).ln()).collect();
        // Random initial ranking.
        for i in (1..logits.len()).rev() {
            let j = rng.gen_range(0..=i);
            logits.swap(i, j);
        }
        let mut trace = PopularityTrace::new();
        for _ in 0..self.iterations {
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
            let total: f64 = exps.iter().sum();
            let counts: Vec<u64> = exps
                .iter()
                .map(|e| ((e / total) * self.tokens_per_iteration as f64).round() as u64)
                .collect();
            trace.push(counts);
            for l in &mut logits {
                *l += normal.sample(&mut rng);
            }
            if rng.gen::<f64>() < self.jolt_prob {
                let k = logits.len();
                let up = rng.gen_range(0..k);
                let down = rng.gen_range(0..k);
                logits[up] += 2.0;
                logits[down] -= 2.0;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_series() {
        let mut t = PopularityTrace::new();
        t.push(vec![1, 2, 3]);
        t.push(vec![4, 5, 6]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.expert_classes(), 3);
        assert_eq!(t.series(1), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "expert count changed")]
    fn ragged_trace_rejected() {
        let mut t = PopularityTrace::new();
        t.push(vec![1, 2]);
        t.push(vec![1]);
    }

    #[test]
    fn max_shift_detects_spike() {
        let mut t = PopularityTrace::new();
        t.push(vec![100, 10]);
        t.push(vec![100, 10]);
        t.push(vec![5, 160]);
        assert!((t.max_shift_within(3) - 20.0).abs() < 1e-9);
        // Window of 1 sees no cross-iteration pairs.
        assert_eq!(t.max_shift_within(1), 1.0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut t = PopularityTrace::new();
        t.push(vec![3, 1, 4]);
        let n = t.normalized(0);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let t = SyntheticTraceConfig { iterations: 5, ..Default::default() }.generate();
        let back = PopularityTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_skewed() {
        let cfg = SyntheticTraceConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        // Skew: busiest expert should dominate the quietest by a lot.
        let first = &a.iterations[0];
        let max = *first.iter().max().unwrap() as f64;
        let min = (*first.iter().min().unwrap()).max(1) as f64;
        assert!(max / min > 3.0, "{max}/{min}");
    }

    #[test]
    fn synthetic_trace_shows_large_shifts_over_time() {
        // With drift + jolts, some expert must swing substantially within a
        // short window across 200 iterations (Figure 2's phenomenon).
        let t = SyntheticTraceConfig::default().generate();
        assert!(t.max_shift_within(5) > 4.0, "got {}", t.max_shift_within(5));
    }

    #[test]
    fn totals_are_approximately_conserved() {
        let cfg = SyntheticTraceConfig::default();
        let t = cfg.generate();
        for row in &t.iterations {
            let total: u64 = row.iter().sum();
            let expect = cfg.tokens_per_iteration as f64;
            assert!((total as f64 - expect).abs() / expect < 0.01);
        }
    }
}
