//! # symi-workload
//!
//! Synthetic training workloads for the SYMI reproduction.
//!
//! The paper trains GPT variants on MMLU; that dataset (and the scale at
//! which its popularity dynamics were measured) is not available here, so
//! this crate provides the documented substitute (DESIGN.md):
//!
//! - [`corpus`]: a *drifting-topic corpus* — sequences sampled from a
//!   mixture of per-topic token processes whose mixture weights shift over
//!   the course of training. The learned router clusters topics onto
//!   experts, which makes expert popularity both **skewed** (topics are
//!   Zipf-weighted) and **dynamic** (the mixture drifts), reproducing the
//!   Figure 2 phenomenology from first principles rather than by replaying
//!   hard-coded numbers.
//! - [`trace`]: recording, statistics, and serde round-tripping of expert
//!   popularity traces, plus a synthetic trace generator for latency
//!   experiments that don't need real training.

pub mod corpus;
pub mod trace;

pub use corpus::{Batch, CorpusConfig, DriftingCorpus};
pub use trace::{PopularityTrace, SyntheticTraceConfig};
