//! The drifting-topic synthetic corpus.
//!
//! Each sequence is drawn from one *topic*. A topic is a stochastic token
//! process with learnable structure: with probability `coherence` the next
//! token is a deterministic per-topic bigram successor of the current token,
//! otherwise it is sampled from the topic's Zipf-tilted unigram
//! distribution over the topic's vocabulary slice. A language model can
//! therefore reduce loss substantially by learning per-topic bigram tables —
//! and a mixture-of-experts router can reduce it further by dedicating
//! experts to topics.
//!
//! Topic mixture weights drift over training (smooth random walk in logit
//! space with occasional jolts), which is what turns expert popularity into
//! the highly dynamic signal of Figure 2.

use symi_tensor::rng::{Distribution, Rng, StdRng};

/// Corpus configuration.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Token vocabulary size.
    pub vocab_size: usize,
    /// Number of latent topics.
    pub topics: usize,
    /// Sequence length of every sample.
    pub seq_len: usize,
    /// Sequences per global batch.
    pub batch_size: usize,
    /// Probability that a token follows its topic's bigram successor.
    pub coherence: f64,
    /// Zipf exponent of the topic-popularity prior (higher ⇒ more skew).
    pub topic_zipf: f64,
    /// Scale of the per-iteration random walk on topic logits.
    pub drift_sigma: f64,
    /// Probability per iteration of a sudden topic-popularity jolt
    /// (reproduces Figure 2's 16×-in-3-iterations swings).
    pub jolt_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab_size: 256,
            topics: 8,
            seq_len: 32,
            batch_size: 32,
            coherence: 0.8,
            topic_zipf: 1.1,
            drift_sigma: 0.15,
            jolt_prob: 0.02,
            seed: 0x5e_ed,
        }
    }
}

/// One training batch: `batch_size` sequences of `seq_len` tokens, with
/// next-token targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// `batch_size × seq_len` token ids, row-major.
    pub tokens: Vec<u32>,
    /// Same shape; `targets[i] = tokens_shifted[i]` (next token).
    pub targets: Vec<u32>,
    /// Topic each sequence was drawn from (ground truth for diagnostics).
    pub topic_of_seq: Vec<usize>,
    pub seq_len: usize,
    pub batch_size: usize,
}

impl Batch {
    /// Total tokens in the batch.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }
}

/// Deterministic drifting-topic corpus generator.
pub struct DriftingCorpus {
    cfg: CorpusConfig,
    rng: StdRng,
    /// Per-topic deterministic bigram successor table.
    bigram: Vec<Vec<u32>>,
    /// Per-topic unigram sampling alias (cumulative distribution).
    unigram_cdf: Vec<Vec<f64>>,
    /// Current topic logits (drifted each iteration).
    topic_logits: Vec<f64>,
    iteration: u64,
}

impl DriftingCorpus {
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.vocab_size >= 2 && cfg.topics >= 1, "degenerate corpus config");
        assert!(cfg.vocab_size >= cfg.topics, "need at least one token per topic");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let v = cfg.vocab_size;

        // Every topic owns a contiguous vocab slice it prefers, with a long
        // Zipf tail over the whole vocabulary so topics overlap.
        let mut bigram = Vec::with_capacity(cfg.topics);
        let mut unigram_cdf = Vec::with_capacity(cfg.topics);
        for t in 0..cfg.topics {
            // Deterministic bigram: affine map with odd multiplier is a
            // permutation of Z_v, different per topic.
            let mult = (2 * (rng.gen_range(1..v / 2).max(1)) + 1) % v;
            let add = rng.gen_range(0..v);
            bigram.push((0..v).map(|c| ((c * mult + add + t) % v) as u32).collect::<Vec<u32>>());

            let slice_start = t * v / cfg.topics;
            let slice_len = v / cfg.topics;
            let mut weights: Vec<f64> = (0..v)
                .map(|tok| {
                    let in_slice = tok >= slice_start && tok < slice_start + slice_len;
                    let base = 1.0 / ((tok % slice_len + 1) as f64).powf(1.2);
                    if in_slice {
                        base
                    } else {
                        base * 0.02
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in &mut weights {
                acc += *w / total;
                *w = acc;
            }
            unigram_cdf.push(weights);
        }

        // Zipf prior over topics (topic 0 most popular), randomized phase so
        // the ranking changes between seeds.
        let mut topic_logits: Vec<f64> =
            (0..cfg.topics).map(|t| -(cfg.topic_zipf) * ((t + 1) as f64).ln()).collect();
        // Shuffle which topic gets which prior mass.
        for i in (1..topic_logits.len()).rev() {
            let j = rng.gen_range(0..=i);
            topic_logits.swap(i, j);
        }

        Self { cfg, rng, bigram, unigram_cdf, topic_logits, iteration: 0 }
    }

    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Current topic mixture (softmax of the drifting logits).
    pub fn topic_mixture(&self) -> Vec<f64> {
        let max = self.topic_logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self.topic_logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }

    fn sample_topic(&mut self) -> usize {
        let mix = self.topic_mixture();
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (t, p) in mix.iter().enumerate() {
            acc += p;
            if u <= acc {
                return t;
            }
        }
        mix.len() - 1
    }

    fn sample_unigram(&mut self, topic: usize) -> u32 {
        let u: f64 = self.rng.gen();
        let cdf = &self.unigram_cdf[topic];
        match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaNs")) {
            Ok(i) | Err(i) => i.min(cdf.len() - 1) as u32,
        }
    }

    /// Advances the topic mixture by one iteration of drift.
    fn drift(&mut self) {
        let normal = symi_tensor::rng::Normal::new(0.0f64, self.cfg.drift_sigma)
            .expect("drift sigma is finite");
        for l in &mut self.topic_logits {
            *l += normal.sample(&mut self.rng);
        }
        if self.rng.gen::<f64>() < self.cfg.jolt_prob {
            // A jolt: one topic surges, another collapses.
            let k = self.topic_logits.len();
            let up = self.rng.gen_range(0..k);
            let down = self.rng.gen_range(0..k);
            self.topic_logits[up] += 2.5;
            self.topic_logits[down] -= 2.5;
        }
    }

    /// Generates the next global batch and advances the drift process.
    pub fn next_batch(&mut self) -> Batch {
        let cfg = self.cfg;
        let mut tokens = Vec::with_capacity(cfg.batch_size * cfg.seq_len);
        let mut targets = Vec::with_capacity(cfg.batch_size * cfg.seq_len);
        let mut topic_of_seq = Vec::with_capacity(cfg.batch_size);
        for _ in 0..cfg.batch_size {
            let topic = self.sample_topic();
            topic_of_seq.push(topic);
            let mut cur = self.sample_unigram(topic);
            let mut seq = Vec::with_capacity(cfg.seq_len + 1);
            seq.push(cur);
            for _ in 0..cfg.seq_len {
                let next = if self.rng.gen::<f64>() < cfg.coherence {
                    self.bigram[topic][cur as usize]
                } else {
                    self.sample_unigram(topic)
                };
                seq.push(next);
                cur = next;
            }
            tokens.extend_from_slice(&seq[..cfg.seq_len]);
            targets.extend_from_slice(&seq[1..=cfg.seq_len]);
        }
        self.drift();
        self.iteration += 1;
        Batch { tokens, targets, topic_of_seq, seq_len: cfg.seq_len, batch_size: cfg.batch_size }
    }

    /// Iterations generated so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_for_a_seed() {
        let mut a = DriftingCorpus::new(CorpusConfig::default());
        let mut b = DriftingCorpus::new(CorpusConfig::default());
        for _ in 0..3 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DriftingCorpus::new(CorpusConfig::default());
        let mut b = DriftingCorpus::new(CorpusConfig { seed: 99, ..CorpusConfig::default() });
        assert_ne!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn targets_are_shifted_tokens() {
        let mut c = DriftingCorpus::new(CorpusConfig::default());
        let b = c.next_batch();
        let s = b.seq_len;
        for seq in 0..b.batch_size {
            for i in 0..s - 1 {
                assert_eq!(b.targets[seq * s + i], b.tokens[seq * s + i + 1]);
            }
        }
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let cfg = CorpusConfig { vocab_size: 64, ..CorpusConfig::default() };
        let mut c = DriftingCorpus::new(cfg);
        for _ in 0..5 {
            let b = c.next_batch();
            assert!(b.tokens.iter().all(|&t| (t as usize) < 64));
            assert!(b.targets.iter().all(|&t| (t as usize) < 64));
        }
    }

    #[test]
    fn sequences_are_bigram_coherent() {
        // With coherence 1.0 the sequence is fully deterministic given its
        // first token, so next-token entropy is zero — the learnable signal.
        let cfg = CorpusConfig { coherence: 1.0, ..CorpusConfig::default() };
        let mut c = DriftingCorpus::new(cfg);
        let b = c.next_batch();
        // Verify every transition matches some topic's bigram table (the
        // sequence's own topic's, in fact).
        let s = b.seq_len;
        for seq in 0..b.batch_size {
            let topic = b.topic_of_seq[seq];
            for i in 0..s - 1 {
                let cur = b.tokens[seq * s + i] as usize;
                let next = b.tokens[seq * s + i + 1];
                assert_eq!(next, c.bigram[topic][cur], "seq {seq} pos {i}");
            }
        }
    }

    #[test]
    fn mixture_is_a_distribution_and_drifts() {
        let mut c = DriftingCorpus::new(CorpusConfig::default());
        let m0 = c.topic_mixture();
        assert!((m0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for _ in 0..50 {
            let _ = c.next_batch();
        }
        let m1 = c.topic_mixture();
        let moved: f64 = m0.iter().zip(&m1).map(|(a, b)| (a - b).abs()).sum();
        assert!(moved > 1e-3, "mixture must drift over 50 iterations");
    }

    #[test]
    fn mixture_is_skewed() {
        let c = DriftingCorpus::new(CorpusConfig::default());
        let m = c.topic_mixture();
        let max = m.iter().cloned().fold(0.0, f64::max);
        let min = m.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 2.0, "Zipf prior must produce skew, got {max}/{min}");
    }

    #[test]
    fn topic_vocab_slices_separate_topics() {
        // Sequences from different topics should mostly use different
        // tokens: check the modal vocab slice matches the topic.
        let cfg =
            CorpusConfig { coherence: 0.0, topics: 4, vocab_size: 256, ..CorpusConfig::default() };
        let mut c = DriftingCorpus::new(cfg);
        let b = c.next_batch();
        let slice = 256 / 4;
        let mut hits = 0usize;
        let mut total = 0usize;
        for seq in 0..b.batch_size {
            let topic = b.topic_of_seq[seq];
            for i in 0..b.seq_len {
                let tok = b.tokens[seq * b.seq_len + i] as usize;
                total += 1;
                if tok / slice == topic {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 > 0.7,
            "tokens should concentrate in the topic slice: {hits}/{total}"
        );
    }
}
