//! Token + learned positional embedding, and the tied output projection.

use symi_tensor::rng::StdRng;
use symi_tensor::{init, Matrix};

/// Token/positional embedding table with gradient accumulation.
pub struct Embedding {
    /// `vocab × d_model` token table.
    pub tok: Matrix,
    /// `seq_len × d_model` positional table.
    pub pos: Matrix,
    pub tok_grad: Matrix,
    pub pos_grad: Matrix,
    cached_tokens: Vec<u32>,
    seq_len: usize,
}

impl Embedding {
    pub fn new(vocab: usize, seq_len: usize, d_model: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            tok: init::normal(vocab, d_model, 0.05, &mut rng),
            pos: init::normal(seq_len, d_model, 0.05, &mut rng),
            tok_grad: Matrix::zeros(vocab, d_model),
            pos_grad: Matrix::zeros(seq_len, d_model),
            cached_tokens: Vec::new(),
            seq_len,
        }
    }

    /// Embeds a flat `batch × seq_len` token buffer into a
    /// `(batch·seq_len) × d_model` activation matrix.
    pub fn forward(&mut self, tokens: &[u32]) -> Matrix {
        assert_eq!(tokens.len() % self.seq_len, 0, "tokens must tile whole sequences");
        self.cached_tokens = tokens.to_vec();
        let mut out = Matrix::zeros(tokens.len(), self.tok.cols());
        for (i, &t) in tokens.iter().enumerate() {
            let pos = i % self.seq_len;
            out.copy_row_from(i, &self.tok, t as usize);
            out.axpy_row_from(i, 1.0, &self.pos, pos);
        }
        out
    }

    /// Accumulates gradients for the last forward pass.
    pub fn backward(&mut self, dy: &Matrix) {
        assert_eq!(dy.rows(), self.cached_tokens.len(), "backward shape mismatch");
        for (i, &t) in self.cached_tokens.iter().enumerate() {
            let pos = i % self.seq_len;
            self.tok_grad.axpy_row_from(t as usize, 1.0, dy, i);
            self.pos_grad.axpy_row_from(pos, 1.0, dy, i);
        }
    }

    /// Visits `(param, grad)` pairs for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.tok, &mut self.tok_grad);
        f(&mut self.pos, &mut self.pos_grad);
    }

    pub fn zero_grad(&mut self) {
        self.tok_grad.fill_zero();
        self.pos_grad.fill_zero();
    }
}

/// Output head: a `d_model × vocab` projection.
pub struct LmHead {
    pub w: Matrix,
    pub w_grad: Matrix,
    cached_input: Matrix,
}

impl LmHead {
    pub fn new(d_model: usize, vocab: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            w: init::xavier_uniform(d_model, vocab, &mut rng),
            w_grad: Matrix::zeros(d_model, vocab),
            cached_input: Matrix::zeros(0, 0),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cached_input = x.clone();
        x.matmul(&self.w)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        self.w_grad.axpy(1.0, &self.cached_input.matmul_tn(dy));
        dy.matmul_nt(&self.w)
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.w_grad);
    }

    pub fn zero_grad(&mut self) {
        self.w_grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad;

    #[test]
    fn embedding_adds_token_and_position() {
        let mut e = Embedding::new(10, 4, 8, 1);
        let out = e.forward(&[3, 7, 3, 1]);
        // Row 0 and row 2 share token 3 but differ by position vectors.
        let mut expected0 = Matrix::zeros(1, 8);
        expected0.copy_row_from(0, &e.tok, 3);
        expected0.axpy_row_from(0, 1.0, &e.pos, 0);
        assert_eq!(out.row(0), expected0.row(0));
        assert_ne!(out.row(0), out.row(2));
    }

    #[test]
    fn embedding_backward_scatters_gradients() {
        let mut e = Embedding::new(6, 2, 4, 2);
        let _ = e.forward(&[5, 5]); // token 5 at positions 0 and 1
        let dy = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        e.backward(&dy);
        // Token 5's grad is the sum of both rows.
        let expect: Vec<f32> = (0..4).map(|c| (c as f32) + (4 + c) as f32).collect();
        assert_eq!(e.tok_grad.row(5), expect.as_slice());
        // Position grads are the individual rows.
        assert_eq!(e.pos_grad.row(0), dy.row(0));
        assert_eq!(e.pos_grad.row(1), dy.row(1));
        // Untouched tokens stay zero.
        assert!(e.tok_grad.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lm_head_backward_matches_numeric() {
        let mut head = LmHead::new(6, 9, 3);
        let x = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.3).sin());
        let dy = Matrix::from_fn(4, 9, |r, c| ((r + c) as f32 * 0.21).cos());

        let _ = head.forward(&x);
        let dx = head.backward(&dy);

        let w_snapshot = head.w.clone();
        let ndx = numerical_grad(&x, &dy, |xp| xp.matmul(&w_snapshot));
        assert!(dx.max_abs_diff(&ndx) < 1e-2);

        let ndw = numerical_grad(&w_snapshot, &dy, |wp| x.matmul(wp));
        assert!(head.w_grad.max_abs_diff(&ndw) < 1e-2);
    }

    #[test]
    fn zero_grad_clears() {
        let mut e = Embedding::new(4, 2, 4, 1);
        let _ = e.forward(&[1, 2]);
        e.backward(&Matrix::from_fn(2, 4, |_, _| 1.0));
        e.zero_grad();
        assert!(e.tok_grad.as_slice().iter().all(|&v| v == 0.0));
    }
}
