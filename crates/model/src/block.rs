//! One transformer block: pre-LN attention + pre-LN MoE FFN, both residual.

use crate::attention::CausalAttention;
use crate::config::ModelConfig;
use crate::layernorm::LayerNorm;
use crate::moe::{MoeLayer, MoeStats};
use symi_tensor::Matrix;

/// `x → x + Attn(LN1(x)) → h → h + MoE(LN2(h))`.
pub struct TransformerBlock {
    pub ln1: LayerNorm,
    pub attn: CausalAttention,
    pub ln2: LayerNorm,
    pub moe: MoeLayer,
}

impl TransformerBlock {
    pub fn new(cfg: &ModelConfig, layer_index: usize) -> Self {
        let seed = cfg.seed.wrapping_add(1000 * (layer_index as u64 + 1));
        Self {
            ln1: LayerNorm::new(cfg.d_model),
            attn: CausalAttention::new(cfg.d_model, cfg.n_heads, cfg.seq_len, seed),
            ln2: LayerNorm::new(cfg.d_model),
            moe: MoeLayer::new(
                cfg.d_model,
                cfg.d_ff,
                cfg.experts,
                cfg.top_k,
                cfg.slot_capacity(),
                cfg.aux_loss_coef,
                seed ^ 0xa5a5,
            )
            .with_f16_experts(cfg.f16_experts),
        }
    }

    pub fn forward(&mut self, x: &Matrix, replicas: &[usize]) -> (Matrix, MoeStats) {
        let a_in = self.ln1.forward(x);
        let a_out = self.attn.forward(&a_in);
        let h = x.add(&a_out);
        let m_in = self.ln2.forward(&h);
        let (m_out, stats) = self.moe.forward(&m_in, replicas);
        (h.add(&m_out), stats)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        // dy flows to both the residual and the MoE branch.
        let dm_in = self.moe.backward(dy);
        let mut dh = self.ln2.backward(&dm_in);
        dh.axpy(1.0, dy);
        // dh flows to both the input residual and the attention branch.
        let da_in = self.attn.backward(&dh);
        let mut dx = self.ln1.backward(&da_in);
        dx.axpy(1.0, &dh);
        dx
    }

    pub fn visit_dense_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.moe.visit_dense_params(f);
    }

    pub fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attn.zero_grad();
        self.ln2.zero_grad();
        self.moe.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad_scalar;

    #[test]
    fn block_backward_matches_numeric() {
        let cfg = ModelConfig {
            capacity_factor: 100.0, // keep all tokens so the kept set is stable
            aux_loss_coef: 0.0,
            ..ModelConfig::tiny()
        };
        let mut block = TransformerBlock::new(&cfg, 0);
        let replicas = vec![2usize; cfg.experts];
        let rows = cfg.seq_len * 2;
        let x = Matrix::from_fn(rows, cfg.d_model, |r, c| ((r * 7 + c) as f32 * 0.13).sin());
        let dy = Matrix::from_fn(rows, cfg.d_model, |r, c| ((r + 3 * c) as f32 * 0.11).cos());

        let (_, _) = block.forward(&x, &replicas);
        let dx = block.backward(&dy);

        let ndx = numerical_grad_scalar(&x, |xp| {
            let mut probe = TransformerBlock::new(&cfg, 0);
            let (y, _) = probe.forward(xp, &replicas);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 5e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn residual_passes_dropped_tokens_through() {
        // With zero capacity the MoE contributes nothing: the block output
        // must equal the attention half alone.
        let cfg = ModelConfig { capacity_factor: 0.0, ..ModelConfig::tiny() };
        let mut block = TransformerBlock::new(&cfg, 0);
        let replicas = vec![2usize; cfg.experts];
        let x = Matrix::from_fn(cfg.seq_len, cfg.d_model, |r, c| ((r + c) as f32 * 0.2).sin());
        let (y, stats) = block.forward(&x, &replicas);
        assert_eq!(stats.survived, 0);
        // y = h + 0 where h = x + attn(ln1 x).
        let mut probe = TransformerBlock::new(&cfg, 0);
        let a = probe.attn.forward(&probe.ln1.forward(&x));
        let h = x.add(&a);
        assert!(y.max_abs_diff(&h) < 1e-6);
    }
}
