//! The learned top-k router (gate network).
//!
//! The paper's evaluation uses Top-1 (Switch-style) routing; modern MoEs
//! (GShard, Mixtral) route each token to its top-k experts. This router
//! supports any `k ≥ 1`: each token receives up to `k` `(class, gate)`
//! assignments, where the gate is the class's raw softmax probability (so
//! `k = 1` reproduces Switch semantics exactly, gradients included).
//!
//! The popularity counters this router produces are exactly what SYMI's
//! Layer Metadata Store aggregates (§3.4); with `k > 1` each token
//! contributes `k` assignment counts.

use symi_tensor::ops::{softmax_rows_backward_into, softmax_rows_into};
use symi_tensor::rng::StdRng;
use symi_tensor::{init, Matrix};

/// Routing decision for one forward pass.
#[derive(Clone, Debug)]
pub struct Routing {
    /// Per token: its top-k `(class, gate)` pairs, best first.
    pub assignment: Vec<Vec<(usize, f32)>>,
    /// Assignments per class — the popularity counters.
    pub popularity: Vec<u64>,
    /// Switch auxiliary load-balancing loss (already scaled by the coef),
    /// computed over top-1 fractions.
    pub aux_loss: f32,
}

impl Routing {
    /// The primary (top-1) class of every token.
    pub fn top1(&self) -> Vec<usize> {
        self.assignment.iter().map(|a| a[0].0).collect()
    }
}

/// Linear router: logits = `x · Wr`.
pub struct Router {
    pub w: Matrix,
    pub w_grad: Matrix,
    aux_coef: f32,
    top_k: usize,
    cached_x: Matrix,
    cached_probs: Matrix,
    cached_top1: Vec<usize>,
    scratch_logits: Matrix,
    scratch_dprobs: Matrix,
    scratch_dlogits: Matrix,
    scratch_order: Vec<usize>,
    scratch_f: Vec<f32>,
    /// Cumulative NaN probabilities observed across forward passes (the
    /// `router.nan_logits` telemetry gauge). A NaN never panics the top-k
    /// sort — NaN orders last — but it flags numeric trouble upstream.
    nan_logits: u64,
}

impl Router {
    pub fn new(d_model: usize, experts: usize, top_k: usize, aux_coef: f32, seed: u64) -> Self {
        assert!(top_k >= 1 && top_k <= experts, "top_k must be in [1, experts]");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            w: init::normal(d_model, experts, 0.02, &mut rng),
            w_grad: Matrix::zeros(d_model, experts),
            aux_coef,
            top_k,
            cached_x: Matrix::zeros(0, 0),
            cached_probs: Matrix::zeros(0, 0),
            cached_top1: Vec::new(),
            scratch_logits: Matrix::zeros(0, 0),
            scratch_dprobs: Matrix::zeros(0, 0),
            scratch_dlogits: Matrix::zeros(0, 0),
            scratch_order: Vec::new(),
            scratch_f: Vec::new(),
            nan_logits: 0,
        }
    }

    pub fn experts(&self) -> usize {
        self.w.cols()
    }

    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Cumulative NaN probabilities observed across forward passes — the
    /// value the trainer exports as the `router.nan_logits` gauge. Nonzero
    /// means inf/NaN logits reached the router and were routed around.
    pub fn nan_logits(&self) -> u64 {
        self.nan_logits
    }

    /// Routes every token (row of `x`) to its top-k experts.
    pub fn forward(&mut self, x: &Matrix) -> Routing {
        x.matmul_into(&self.w, &mut self.scratch_logits);
        softmax_rows_into(&self.scratch_logits, &mut self.cached_probs);
        let e = self.experts();
        let t = x.rows();
        let k = self.top_k;

        let mut assignment = Vec::with_capacity(t);
        let mut popularity = vec![0u64; e];
        self.cached_top1.clear();
        for r in 0..t {
            let row = self.cached_probs.row(r);
            // NaN-last descending sort: a NaN probability (softmax of an
            // inf/NaN logit) must not panic routing — it loses to every
            // finite entry and is tallied for the `router.nan_logits`
            // gauge instead.
            self.nan_logits += row.iter().filter(|p| p.is_nan()).count() as u64;
            self.scratch_order.clear();
            self.scratch_order.extend(0..e);
            self.scratch_order.sort_by(|&a, &b| match (row[a].is_nan(), row[b].is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => row[b].partial_cmp(&row[a]).expect("both finite"),
            });
            let picks: Vec<(usize, f32)> =
                self.scratch_order[..k].iter().map(|&c| (c, row[c])).collect();
            self.cached_top1.push(picks[0].0);
            for &(c, _) in &picks {
                popularity[c] += 1;
            }
            assignment.push(picks);
        }

        // Switch aux loss over top-1 fractions: coef · E · Σ_e f_e · P_e.
        let tf = t as f32;
        let mut aux = 0.0f32;
        self.scratch_f.clear();
        self.scratch_f.resize(e, 0.0);
        for &a in &self.cached_top1 {
            self.scratch_f[a] += 1.0 / tf;
        }
        for class in 0..e {
            let p_e: f32 = (0..t).map(|r| self.cached_probs[(r, class)]).sum::<f32>() / tf;
            aux += self.scratch_f[class] * p_e;
        }
        aux *= self.aux_coef * e as f32;

        self.cached_x.copy_from(x);
        Routing { assignment, popularity, aux_loss: aux }
    }

    /// Backward pass. `dgates[t]` lists `(class, ∂L/∂gate)` for each of
    /// token `t`'s kept assignments; the auxiliary-loss gradient (with
    /// `f_e` constant, as in Switch) is added internally. Returns `dX`.
    pub fn backward(&mut self, dgates: &[Vec<(usize, f32)>]) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(dgates, &mut dx);
        dx
    }

    /// [`Router::backward`] into a reusable `dx` buffer.
    pub fn backward_into(&mut self, dgates: &[Vec<(usize, f32)>], dx: &mut Matrix) {
        let t = self.cached_x.rows();
        assert_eq!(dgates.len(), t, "one gate-gradient list per token");
        let e = self.experts();
        let tf = t as f32;

        self.scratch_f.clear();
        self.scratch_f.resize(e, 0.0);
        for &a in &self.cached_top1 {
            self.scratch_f[a] += 1.0 / tf;
        }

        self.scratch_dprobs.resize_to(t, e);
        self.scratch_dprobs.fill_zero();
        for (r, gates) in dgates.iter().enumerate() {
            for &(c, dg) in gates {
                self.scratch_dprobs[(r, c)] += dg;
            }
            for c in 0..e {
                self.scratch_dprobs[(r, c)] += self.aux_coef * e as f32 * self.scratch_f[c] / tf;
            }
        }
        softmax_rows_backward_into(
            &self.cached_probs,
            &self.scratch_dprobs,
            &mut self.scratch_dlogits,
        );
        self.cached_x.matmul_tn_acc(&self.scratch_dlogits, &mut self.w_grad);
        self.scratch_dlogits.matmul_nt_into(&self.w, dx);
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.w_grad);
    }

    pub fn zero_grad(&mut self) {
        self.w_grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad_scalar;
    use symi_tensor::ops::softmax_rows;

    #[test]
    fn top1_assignment_is_argmax_and_popularity_sums() {
        let mut r = Router::new(4, 3, 1, 0.0, 1);
        let x = Matrix::from_fn(10, 4, |i, c| ((i * 4 + c) as f32 * 0.37).sin());
        let routing = r.forward(&x);
        assert_eq!(routing.assignment.len(), 10);
        assert_eq!(routing.popularity.iter().sum::<u64>(), 10);
        for (t, picks) in routing.assignment.iter().enumerate() {
            assert_eq!(picks.len(), 1);
            let probs = r.cached_probs.row(t);
            let best =
                probs.iter().enumerate().max_by(|x, y| x.1.partial_cmp(y.1).unwrap()).unwrap().0;
            assert_eq!(picks[0].0, best);
            assert!((picks[0].1 - probs[best]).abs() < 1e-7);
        }
    }

    #[test]
    fn top2_selects_two_distinct_descending_classes() {
        let mut r = Router::new(4, 5, 2, 0.0, 3);
        let x = Matrix::from_fn(12, 4, |i, c| ((i + 2 * c) as f32 * 0.41).cos());
        let routing = r.forward(&x);
        assert_eq!(routing.popularity.iter().sum::<u64>(), 24, "two counts per token");
        for picks in &routing.assignment {
            assert_eq!(picks.len(), 2);
            assert_ne!(picks[0].0, picks[1].0);
            assert!(picks[0].1 >= picks[1].1, "gates ordered descending");
        }
    }

    #[test]
    fn gate_gradient_matches_numeric_top1() {
        let mut r = Router::new(4, 3, 1, 0.0, 2);
        let x = Matrix::from_fn(6, 4, |i, c| ((i + c) as f32 * 0.23).cos());
        let routing = r.forward(&x);
        let dgates: Vec<Vec<(usize, f32)>> =
            routing.assignment.iter().map(|p| vec![(p[0].0, 1.0)]).collect();
        let dx = r.backward(&dgates);

        let assignment = routing.top1();
        let w = r.w.clone();
        let ndx = numerical_grad_scalar(&x, |xp| {
            let probs = softmax_rows(&xp.matmul(&w));
            (0..6).map(|t| probs[(t, assignment[t])]).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 1e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn gate_gradient_matches_numeric_top2() {
        let mut r = Router::new(4, 4, 2, 0.0, 5);
        let x = Matrix::from_fn(5, 4, |i, c| ((2 * i + c) as f32 * 0.31).sin());
        let routing = r.forward(&x);
        // Loss = sum of both gates per token.
        let dgates: Vec<Vec<(usize, f32)>> =
            routing.assignment.iter().map(|p| p.iter().map(|&(c, _)| (c, 1.0)).collect()).collect();
        let dx = r.backward(&dgates);

        let picks: Vec<Vec<usize>> =
            routing.assignment.iter().map(|p| p.iter().map(|&(c, _)| c).collect()).collect();
        let w = r.w.clone();
        let ndx = numerical_grad_scalar(&x, |xp| {
            let probs = softmax_rows(&xp.matmul(&w));
            (0..5).map(|t| picks[t].iter().map(|&c| probs[(t, c)]).sum::<f32>()).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 1e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn aux_loss_gradient_matches_numeric() {
        let coef = 0.5f32;
        let mut r = Router::new(4, 3, 1, coef, 3);
        let x = Matrix::from_fn(8, 4, |i, c| ((i * 2 + c) as f32 * 0.19).sin());
        let routing = r.forward(&x);
        let zero_dgates: Vec<Vec<(usize, f32)>> = vec![vec![]; 8];
        let _ = r.backward(&zero_dgates); // only aux gradient
        let dw = r.w_grad.clone();

        let assignment = routing.top1();
        let ndw = numerical_grad_scalar(&r.w.clone(), |wp| {
            let probs = softmax_rows(&x.matmul(wp));
            let e = 3usize;
            let tf = 8.0f32;
            let mut f = vec![0.0f32; e];
            for &a in &assignment {
                f[a] += 1.0 / tf;
            }
            let mut aux = 0.0f32;
            for c in 0..e {
                let p_c: f32 = (0..8).map(|t| probs[(t, c)]).sum::<f32>() / tf;
                aux += f[c] * p_c;
            }
            aux * coef * e as f32
        });
        assert!(dw.max_abs_diff(&ndw) < 1e-2, "diff {}", dw.max_abs_diff(&ndw));
    }

    #[test]
    fn aux_loss_sits_near_one_for_near_uniform_routing() {
        let mut r = Router::new(8, 4, 1, 1.0, 4);
        let x = Matrix::from_fn(64, 8, |i, c| ((i * 8 + c) as f32 * 0.61).sin());
        let routing = r.forward(&x);
        assert!(
            (0.8..=4.0).contains(&routing.aux_loss),
            "aux {:.4} out of plausible range",
            routing.aux_loss
        );
    }

    #[test]
    #[should_panic(expected = "top_k must be in")]
    fn oversized_k_rejected() {
        let _ = Router::new(4, 3, 4, 0.0, 1);
    }

    #[test]
    fn nan_probs_route_to_a_finite_class_without_panicking() {
        // A NaN feature makes the whole row's softmax NaN; a partially
        // huge feature can make *some* probs NaN. The sort used to panic
        // on `partial_cmp(..).expect("finite probs")` — now NaN orders
        // last, the token routes to the best finite class when one exists,
        // and the counter reports what it saw.
        let mut r = Router::new(4, 3, 2, 0.0, 7);
        let mut x = Matrix::from_fn(5, 4, |i, c| ((i * 4 + c) as f32 * 0.37).sin());
        x[(1, 2)] = f32::NAN; // row 1: every prob NaN
        let routing = r.forward(&x);
        assert_eq!(routing.assignment.len(), 5);
        assert_eq!(routing.popularity.iter().sum::<u64>(), 10, "two counts per token");
        assert_eq!(r.nan_logits(), 3, "row 1 contributes one NaN per class");
        // Finite rows are untouched by the NaN-aware comparator.
        for (t, picks) in routing.assignment.iter().enumerate() {
            if t != 1 {
                assert!(picks.iter().all(|&(_, g)| g.is_finite()), "token {t} gates finite");
                assert!(picks[0].1 >= picks[1].1, "gates ordered descending");
            }
        }

        // An inf logit also poisons its whole softmax row (the NaN row sum
        // propagates) — still no panic, deterministic pick, counted.
        let mut r2 = Router::new(2, 3, 1, 0.0, 9);
        r2.w[(0, 0)] = f32::INFINITY;
        let x2 = Matrix::from_fn(1, 2, |_, _| 1.0);
        let routing2 = r2.forward(&x2);
        assert_eq!(r2.nan_logits(), 3, "the inf logit must surface in the counter");
        assert_eq!(routing2.assignment[0].len(), 1, "the token still routes");
    }
}
