//! LayerNorm layer object wrapping the kernels in `symi-tensor`.

use symi_tensor::ops::{layernorm, layernorm_backward, LayerNormCache};
use symi_tensor::Matrix;

/// LayerNorm with learned affine parameters.
pub struct LayerNorm {
    pub gamma: Matrix,
    pub beta: Matrix,
    pub gamma_grad: Matrix,
    pub beta_grad: Matrix,
    eps: f32,
    cache: Option<LayerNormCache>,
}

impl LayerNorm {
    pub fn new(d_model: usize) -> Self {
        Self {
            gamma: Matrix::from_vec(1, d_model, vec![1.0; d_model]),
            beta: Matrix::zeros(1, d_model),
            gamma_grad: Matrix::zeros(1, d_model),
            beta_grad: Matrix::zeros(1, d_model),
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, cache) = layernorm(x, &self.gamma, &self.beta, self.eps);
        self.cache = Some(cache);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward before forward");
        let (dx, dgamma, dbeta) = layernorm_backward(dy, &self.gamma, cache);
        self.gamma_grad.axpy(1.0, &dgamma);
        self.beta_grad.axpy(1.0, &dbeta);
        dx
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.gamma, &mut self.gamma_grad);
        f(&mut self.beta, &mut self.beta_grad);
    }

    pub fn zero_grad(&mut self) {
        self.gamma_grad.fill_zero();
        self.beta_grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad;

    #[test]
    fn layer_backward_matches_numeric() {
        let mut ln = LayerNorm::new(6);
        // Non-identity affine so gamma/beta grads are exercised.
        ln.gamma = Matrix::from_fn(1, 6, |_, c| 1.0 + 0.2 * c as f32);
        ln.beta = Matrix::from_fn(1, 6, |_, c| 0.1 * c as f32);
        let x = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as f32 * 0.31).sin());
        let dy = Matrix::from_fn(3, 6, |r, c| ((r + c) as f32 * 0.23).cos());

        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);

        let gamma = ln.gamma.clone();
        let beta = ln.beta.clone();
        let ndx =
            numerical_grad(&x, &dy, |xp| symi_tensor::ops::layernorm(xp, &gamma, &beta, 1e-5).0);
        assert!(dx.max_abs_diff(&ndx) < 1e-2);
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.5 + 0.1);
        let dy = Matrix::from_fn(2, 4, |_, _| 1.0);
        let _ = ln.forward(&x);
        let _ = ln.backward(&dy);
        let once = ln.beta_grad.clone();
        let _ = ln.forward(&x);
        let _ = ln.backward(&dy);
        let mut twice = once.clone();
        twice.scale(2.0);
        assert!(ln.beta_grad.max_abs_diff(&twice) < 1e-5);
    }
}
