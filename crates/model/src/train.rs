//! Training loop parameterized over a replica-placement policy.
//!
//! This is the *functional* training engine used for convergence
//! experiments (Figures 7–10, Tables 1/3): it maintains exactly one
//! canonical parameter set per expert class — mathematically identical to a
//! fully synchronized distributed run (all replicas of a class hold the
//! same weights after every optimizer step) — while the replica counts
//! produced by the [`PlacementPolicy`] drive class capacities and therefore
//! token drops. The physically-distributed engines in the `symi` and
//! `symi-baselines` crates exercise the real communication paths and are
//! cross-checked against this one in the integration tests.

use crate::config::ModelConfig;
use crate::model::{GptMoe, StepStats};
use std::sync::Arc;
use symi_telemetry::{ClusterTelemetry, IterationReport, Phase};
use symi_tensor::{kernel_stats, pool, AdamConfig, AdamState, KernelStats, PoolStats};
use symi_workload::{DriftingCorpus, PopularityTrace};

/// Decides each layer's replica allocation for the next iteration.
///
/// Implementations: [`UniformPolicy`] (DeepSpeed-style static), the SYMI
/// Expert Placement Scheduler (`symi::scheduler::SymiPolicy`, Algorithm 1),
/// and the FlexMoE interval policy (`symi_baselines::flexmoe`).
pub trait PlacementPolicy {
    /// Human-readable system name for reports.
    fn name(&self) -> &'static str;

    /// Returns next iteration's replica counts for `layer`, given the
    /// popularity the router just observed. Counts must sum to the total
    /// slot count and be ≥1 everywhere.
    fn next_replicas(&mut self, layer: usize, popularity: &[u64], iteration: u64) -> Vec<usize>;

    /// The world shrank (elastic recovery after a permanent rank loss):
    /// every subsequent [`PlacementPolicy::next_replicas`] must sum to
    /// `total_slots`. Policies that carry a slot budget override this;
    /// stateless ones can ignore it.
    fn on_world_shrink(&mut self, total_slots: usize) {
        let _ = total_slots;
    }

    /// The world grew (elastic scale-out admitted a joiner): every
    /// subsequent [`PlacementPolicy::next_replicas`] must sum to the
    /// enlarged `total_slots`. Same contract as
    /// [`PlacementPolicy::on_world_shrink`], opposite direction.
    fn on_world_grow(&mut self, total_slots: usize) {
        let _ = total_slots;
    }
}

/// Static uniform replication (`r = sN/E`), as DeepSpeed provisions.
pub struct UniformPolicy {
    pub experts: usize,
    pub total_slots: usize,
}

impl PlacementPolicy for UniformPolicy {
    fn name(&self) -> &'static str {
        "deepspeed-static"
    }

    fn next_replicas(&mut self, _layer: usize, _popularity: &[u64], _iter: u64) -> Vec<usize> {
        assert_eq!(self.total_slots % self.experts, 0, "uniform replication must divide");
        vec![self.total_slots / self.experts; self.experts]
    }

    fn on_world_shrink(&mut self, total_slots: usize) {
        // The divisibility assert above still applies: static uniform
        // replication only survives shrinks that keep `E | total_slots`.
        self.total_slots = total_slots;
    }

    fn on_world_grow(&mut self, total_slots: usize) {
        self.total_slots = total_slots;
    }
}

/// Everything recorded over a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainRecord {
    /// Cross-entropy loss per iteration.
    pub losses: Vec<f32>,
    /// Overall token survival per iteration.
    pub survival: Vec<f64>,
    /// Popularity trace per layer.
    pub popularity: Vec<PopularityTrace>,
    /// Replica allocation per layer per iteration (post-policy).
    pub replicas: Vec<Vec<Vec<usize>>>,
    /// Total replica moves (instances re-assigned) per iteration, summed
    /// over layers — what coupled systems pay migration for.
    pub moved_replicas: Vec<usize>,
}

impl TrainRecord {
    /// First iteration whose smoothed loss reaches `target`, if any.
    /// Smoothing: trailing mean over `window`.
    pub fn iterations_to_loss(&self, target: f32, window: usize) -> Option<usize> {
        let w = window.max(1);
        for i in 0..self.losses.len() {
            let lo = i.saturating_sub(w - 1);
            let mean: f32 = self.losses[lo..=i].iter().sum::<f32>() / (i - lo + 1) as f32;
            if mean <= target {
                return Some(i + 1);
            }
        }
        None
    }

    /// Mean survival over the whole run.
    pub fn mean_survival(&self) -> f64 {
        if self.survival.is_empty() {
            return 1.0;
        }
        self.survival.iter().sum::<f64>() / self.survival.len() as f64
    }

    /// Total dropped-token fraction complement, for Figure 8-style
    /// comparisons ("dropped X% fewer tokens").
    pub fn total_drop_fraction(&self) -> f64 {
        1.0 - self.mean_survival()
    }
}

/// The training driver.
pub struct Trainer {
    pub model: GptMoe,
    policy: Box<dyn PlacementPolicy>,
    dense_opt: Vec<AdamState>,
    /// `[layer][class]` flat Adam over expert parameters.
    expert_opt: Vec<Vec<AdamState>>,
    /// Current replica allocation per layer.
    replicas: Vec<Vec<usize>>,
    pub record: TrainRecord,
    iteration: u64,
    /// Per-iteration observability (disabled by default; see
    /// [`Trainer::attach_telemetry`]).
    telemetry: Arc<ClusterTelemetry>,
    /// Reused flat gradient / updated-weight buffers for the expert
    /// optimizer loop (no per-class allocation in steady state).
    scratch_grads: Vec<f32>,
    scratch_updated: Vec<f32>,
    /// Kernel/pool counter snapshots from the end of the previous step, so
    /// each iteration's gauges report per-step deltas.
    last_kernel: KernelStats,
    last_pool: PoolStats,
    /// Cross-iteration pipelining hook (`SYMI_OVERLAP=on`): the allocation
    /// the policy computed at the end of step *i*, not installed until the
    /// fence at the top of step *i+1* — mirroring the distributed engine,
    /// where the placement a rebalance produces only becomes visible when
    /// the overlapped weight scatter lands at the next iteration's fence.
    /// The policy inputs and outputs are identical either way; only the
    /// installation point moves, so both modes are bit-exact.
    pending_replicas: Option<Vec<Vec<usize>>>,
    pipeline: bool,
}

/// `SYMI_OVERLAP` env switch shared with the distributed engine: `on`/`1`/
/// `true` defers rebalance installation across the step boundary.
fn pipeline_from_env() -> bool {
    std::env::var("SYMI_OVERLAP")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
        .unwrap_or(false)
}

impl Trainer {
    pub fn new(cfg: ModelConfig, policy: Box<dyn PlacementPolicy>) -> Self {
        let model = GptMoe::new(cfg);
        let adam = AdamConfig { lr: cfg.lr, ..AdamConfig::default() };
        let expert_opt = model
            .blocks
            .iter()
            .map(|b| b.moe.experts.iter().map(|e| AdamState::new(adam, &e.flat_params())).collect())
            .collect();
        let mut uniform = UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots };
        let initial = uniform.next_replicas(0, &[], 0);
        let replicas = vec![initial; cfg.layers];
        let record = TrainRecord {
            popularity: vec![PopularityTrace::new(); cfg.layers],
            ..Default::default()
        };
        Self {
            model,
            policy,
            dense_opt: Vec::new(),
            expert_opt,
            replicas,
            record,
            iteration: 0,
            telemetry: ClusterTelemetry::disabled(1),
            scratch_grads: Vec::new(),
            scratch_updated: Vec::new(),
            last_kernel: kernel_stats(),
            last_pool: pool::stats(),
            pending_replicas: None,
            pipeline: pipeline_from_env(),
        }
    }

    /// Installs any allocation still pending from the previous step's
    /// policy run (pipeline mode). Called automatically at the top of
    /// [`Trainer::step`], before checkpointing, and before elastic
    /// shrinking; a no-op otherwise.
    pub fn fence_rebalance(&mut self) {
        if let Some(next) = self.pending_replicas.take() {
            self.replicas = next;
        }
    }

    /// Installs a telemetry cluster (the functional trainer is the 1-rank
    /// case). Each subsequent [`Trainer::step`] times its phases and emits
    /// one [`IterationReport`] — per-class popularity, kept counts, and
    /// replica allocation summed over layers — to the cluster's sinks.
    pub fn attach_telemetry(&mut self, telemetry: Arc<ClusterTelemetry>) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry cluster (disabled unless attached).
    pub fn telemetry(&self) -> &Arc<ClusterTelemetry> {
        &self.telemetry
    }

    /// System name of the installed policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current per-layer replica allocation.
    pub fn replicas(&self) -> &[Vec<usize>] {
        &self.replicas
    }

    /// Completed training iterations — what a disk checkpoint stamps and a
    /// resumed run continues from.
    pub fn iteration_count(&self) -> u64 {
        self.iteration
    }

    /// Runs one training iteration: forward/backward, optimizer step,
    /// popularity bookkeeping, and placement update for the next iteration.
    pub fn step(&mut self, batch: &symi_workload::Batch) -> StepStats {
        self.fence_rebalance();
        let tele = self.telemetry.handle(0);
        self.model.zero_grad();
        let stats = {
            // The functional model interleaves routing, expert compute, and
            // combine inside one call; account it to the expert-FFN phase
            // (the dominant term in the single-process trainer).
            let _span = tele.span(Phase::ExpertFfn);
            self.model.forward_backward(batch, &self.replicas)
        };

        let opt_span = tele.span(Phase::OptimizerStep);
        // Dense parameters: one Adam state per tensor, built lazily in
        // visit order on the first step.
        let adam = AdamConfig { lr: self.model.cfg.lr, ..AdamConfig::default() };
        let dense_opt = &mut self.dense_opt;
        let mut idx = 0usize;
        self.model.visit_dense_params(&mut |param, grad| {
            if dense_opt.len() == idx {
                dense_opt.push(AdamState::new(adam, param.as_slice()));
            }
            let state = &mut dense_opt[idx];
            state.step(grad.as_slice(), param.as_mut_slice());
            idx += 1;
        });

        // Expert parameters: flat Adam per (layer, class), staged through
        // the trainer's reusable flat buffers.
        for (layer, block) in self.model.blocks.iter_mut().enumerate() {
            for (class, expert) in block.moe.experts.iter_mut().enumerate() {
                expert.flat_grads_into(&mut self.scratch_grads);
                self.scratch_updated.resize(self.scratch_grads.len(), 0.0);
                self.expert_opt[layer][class].step(&self.scratch_grads, &mut self.scratch_updated);
                expert.load_flat(&self.scratch_updated);
            }
        }
        drop(opt_span);

        // Bookkeeping + placement for the next iteration.
        let replicas_used = self.telemetry.is_enabled().then(|| self.replicas.clone());
        let rebalance_span = tele.span(Phase::Rebalance);
        let mut moved_total = 0usize;
        let mut next_alloc = Vec::with_capacity(stats.layers.len());
        for (layer, layer_stats) in stats.layers.iter().enumerate() {
            self.record.popularity[layer].push(layer_stats.popularity.clone());
            let next = self.policy.next_replicas(layer, &layer_stats.popularity, self.iteration);
            assert_eq!(
                next.iter().sum::<usize>(),
                self.model.cfg.total_slots,
                "policy must fill all slots"
            );
            moved_total += self.replicas[layer]
                .iter()
                .zip(&next)
                .map(|(&old, &new)| new.saturating_sub(old))
                .sum::<usize>();
            next_alloc.push(next);
        }
        drop(rebalance_span);
        if self.record.replicas.is_empty() {
            self.record.replicas = vec![Vec::new(); self.model.cfg.layers];
        }
        for (layer, reps) in next_alloc.iter().enumerate() {
            self.record.replicas[layer].push(reps.clone());
        }
        // Pipeline mode holds the new allocation at the fence until the
        // next step begins; sequential mode installs it immediately.
        if self.pipeline {
            self.pending_replicas = Some(next_alloc);
        } else {
            self.replicas = next_alloc;
        }
        self.record.losses.push(stats.ce_loss);
        self.record.survival.push(stats.survival_rate());
        self.record.moved_replicas.push(moved_total);

        if self.telemetry.is_enabled() {
            let e = self.model.cfg.experts;
            let mut report = IterationReport::new(self.policy.name(), self.iteration);
            report.loss = stats.ce_loss as f64;
            // Per-class vectors summed over layers; replicas are the counts
            // this step ran with (pre-policy).
            report.popularity = vec![0u64; e];
            report.kept_per_class = vec![0u64; e];
            report.replicas = vec![0u64; e];
            for layer_stats in &stats.layers {
                for (c, &p) in layer_stats.popularity.iter().enumerate() {
                    report.popularity[c] += p;
                }
                for (c, &k) in layer_stats.kept_per_class.iter().enumerate() {
                    report.kept_per_class[c] += k;
                }
            }
            for reps in replicas_used.as_deref().unwrap_or(&[]) {
                for (c, &r) in reps.iter().enumerate() {
                    report.replicas[c] += r as u64;
                }
            }
            report.placement_churn = moved_total as u64;
            report.phase_ns = self.telemetry.drain_phase_ns();

            // Per-step compute-kernel and thread-pool gauges (deltas vs the
            // previous step's counter snapshots).
            let kern = kernel_stats();
            let pstats = pool::stats();
            let gemm_ns = kern.gemm_ns.saturating_sub(self.last_kernel.gemm_ns);
            let gemm_flops = kern.gemm_flops.saturating_sub(self.last_kernel.gemm_flops);
            tele.gauge("kernel.gemm_ms").set(gemm_ns as f64 / 1e6);
            tele.gauge("kernel.gemm_gflops").set(if gemm_ns > 0 {
                gemm_flops as f64 / gemm_ns as f64
            } else {
                0.0
            });
            tele.gauge("kernel.seq_fallback")
                .set(kern.seq_fallback.saturating_sub(self.last_kernel.seq_fallback) as f64);
            tele.gauge("kernel.b_packs")
                .set(kern.b_packs.saturating_sub(self.last_kernel.b_packs) as f64);
            tele.gauge("pool.threads").set(pstats.threads as f64);
            tele.gauge("pool.jobs").set(pstats.jobs.saturating_sub(self.last_pool.jobs) as f64);
            tele.gauge("pool.busy_ms")
                .set(pstats.busy_ns.saturating_sub(self.last_pool.busy_ns) as f64 / 1e6);
            tele.gauge("pool.env_invalid").set(f64::from(pstats.env_invalid));
            self.telemetry.emit(&report);
        }
        self.last_kernel = kernel_stats();
        self.last_pool = pool::stats();

        self.iteration += 1;
        stats
    }

    /// Adapts the trainer to a smaller slot budget — the functional-side
    /// counterpart of the distributed engine's elastic recovery, where a
    /// permanent rank loss removes that rank's expert slots. The model's
    /// total slot count drops, each layer's live allocation is squeezed by
    /// removing replicas from its most-replicated classes (preserving the
    /// one-replica floor), and the policy is notified so its subsequent
    /// allocations sum to the new total.
    ///
    /// # Panics
    /// Panics when `new_total` cannot give every class one replica, or
    /// exceeds the current budget (elasticity here only shrinks).
    pub fn shrink_total_slots(&mut self, new_total: usize) {
        self.fence_rebalance();
        let e = self.model.cfg.experts;
        assert!(new_total >= e, "need at least one slot per expert class");
        assert!(new_total <= self.model.cfg.total_slots, "shrink cannot grow the world");
        self.model.cfg.total_slots = new_total;
        for layer in &mut self.replicas {
            while layer.iter().sum::<usize>() > new_total {
                let i = (0..e)
                    .filter(|&i| layer[i] > 1)
                    .max_by_key(|&i| layer[i])
                    .expect("sum > E implies some class holds more than one replica");
                layer[i] -= 1;
            }
        }
        self.policy.on_world_shrink(new_total);
    }

    /// Adapts the trainer to a larger slot budget — the functional-side
    /// counterpart of the distributed engine's scale-out, where a joining
    /// rank adds its expert slots. The model's total slot count grows,
    /// each layer's live allocation is padded by granting the freed slots
    /// to its *least*-replicated classes (the mirror of the shrink
    /// squeeze, so shrink-then-grow round-trips to a balanced allocation),
    /// and the policy is notified so its subsequent allocations sum to the
    /// new total.
    ///
    /// # Panics
    /// Panics when `new_total` is below the current budget (use
    /// [`Trainer::shrink_total_slots`] for that direction).
    pub fn grow_total_slots(&mut self, new_total: usize) {
        self.fence_rebalance();
        let e = self.model.cfg.experts;
        assert!(new_total >= self.model.cfg.total_slots, "grow cannot shrink the world");
        self.model.cfg.total_slots = new_total;
        for layer in &mut self.replicas {
            while layer.iter().sum::<usize>() < new_total {
                let i = (0..e).min_by_key(|&i| layer[i]).expect("at least one class");
                layer[i] += 1;
            }
        }
        self.policy.on_world_grow(new_total);
    }

    /// Runs `iterations` training steps against the corpus.
    pub fn train(&mut self, corpus: &mut DriftingCorpus, iterations: usize) {
        for _ in 0..iterations {
            let batch = corpus.next_batch();
            let _ = self.step(&batch);
        }
    }

    /// Snapshots everything needed to resume training exactly: parameters,
    /// optimizer states, the current placement, and the run record.
    pub fn checkpoint(&mut self) -> Checkpoint {
        // Fast-forward the pending rebalance so the checkpointed allocation
        // is the one the next step would run with (matching the distributed
        // engine's snapshot fast-forward past an in-flight scatter).
        self.fence_rebalance();
        let mut dense_params = Vec::new();
        self.model.visit_dense_params(&mut |param, _| dense_params.push(param.clone()));
        let expert_params: Vec<Vec<Vec<f32>>> = self
            .model
            .blocks
            .iter()
            .map(|b| b.moe.experts.iter().map(|e| e.flat_params()).collect())
            .collect();
        Checkpoint {
            iteration: self.iteration,
            dense_params,
            dense_opt: self.dense_opt.clone(),
            expert_params,
            expert_opt: self.expert_opt.clone(),
            replicas: self.replicas.clone(),
            record: self.record.clone(),
        }
    }

    /// Restores a [`Checkpoint`] taken from an identically configured
    /// trainer. Training resumed from here reproduces the original run
    /// bit-for-bit (given the same data stream).
    ///
    /// # Panics
    /// Panics if the checkpoint's shapes don't match this model.
    pub fn restore(&mut self, ckpt: Checkpoint) {
        let mut idx = 0usize;
        self.model.visit_dense_params(&mut |param, _| {
            let saved = &ckpt.dense_params[idx];
            assert_eq!(
                (param.rows(), param.cols()),
                (saved.rows(), saved.cols()),
                "dense parameter {idx} shape mismatch"
            );
            *param = saved.clone();
            idx += 1;
        });
        assert_eq!(idx, ckpt.dense_params.len(), "dense parameter count mismatch");
        assert_eq!(ckpt.expert_params.len(), self.model.blocks.len(), "layer count mismatch");
        for (block, layer_params) in self.model.blocks.iter_mut().zip(&ckpt.expert_params) {
            for (expert, params) in block.moe.experts.iter_mut().zip(layer_params) {
                expert.load_flat(params);
            }
        }
        self.dense_opt = ckpt.dense_opt;
        self.expert_opt = ckpt.expert_opt;
        self.replicas = ckpt.replicas;
        self.record = ckpt.record;
        self.iteration = ckpt.iteration;
        self.pending_replicas = None;
    }
}

/// A resumable training snapshot (serializable with serde).
#[derive(Clone)]
pub struct Checkpoint {
    pub iteration: u64,
    /// Dense parameters in `visit_dense_params` order.
    pub dense_params: Vec<symi_tensor::Matrix>,
    pub dense_opt: Vec<AdamState>,
    /// `[layer][class]` flat expert parameters.
    pub expert_params: Vec<Vec<Vec<f32>>>,
    pub expert_opt: Vec<Vec<AdamState>>,
    pub replicas: Vec<Vec<usize>>,
    pub record: TrainRecord,
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_workload::CorpusConfig;

    fn corpus_for(cfg: &ModelConfig) -> DriftingCorpus {
        DriftingCorpus::new(CorpusConfig {
            vocab_size: cfg.vocab_size,
            seq_len: cfg.seq_len,
            batch_size: cfg.batch_size,
            topics: 4,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn loss_decreases_over_training() {
        let cfg = ModelConfig::tiny();
        let mut corpus = corpus_for(&cfg);
        let mut trainer = Trainer::new(
            cfg,
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
        );
        trainer.train(&mut corpus, 60);
        let first: f32 = trainer.record.losses[..10].iter().sum::<f32>() / 10.0;
        let last: f32 = trainer.record.losses[50..].iter().sum::<f32>() / 10.0;
        assert!(last < first - 0.2, "training must reduce loss: first {first:.3} last {last:.3}");
    }

    #[test]
    fn record_tracks_everything() {
        let cfg = ModelConfig::tiny();
        let mut corpus = corpus_for(&cfg);
        let mut trainer = Trainer::new(
            cfg,
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
        );
        trainer.train(&mut corpus, 5);
        assert_eq!(trainer.record.losses.len(), 5);
        assert_eq!(trainer.record.survival.len(), 5);
        assert_eq!(trainer.record.popularity.len(), cfg.layers);
        assert_eq!(trainer.record.popularity[0].len(), 5);
        assert_eq!(trainer.record.replicas[0].len(), 5);
        // Uniform policy never moves replicas.
        assert!(trainer.record.moved_replicas.iter().all(|&m| m == 0));
    }

    #[test]
    fn iterations_to_loss_finds_crossing() {
        let r = TrainRecord { losses: vec![5.0, 4.0, 3.0, 2.0], ..Default::default() };
        assert_eq!(r.iterations_to_loss(3.5, 1), Some(3));
        assert_eq!(r.iterations_to_loss(1.0, 1), None);
        // Smoothed over window 2: means are 5, 4.5, 3.5, 2.5.
        assert_eq!(r.iterations_to_loss(3.5, 2), Some(3));
    }

    #[test]
    fn shrinking_total_slots_keeps_training_consistent() {
        // A popularity-proportional stand-in that honours the shrink hook
        // (the real SymiPolicy lives downstream and can't be imported here).
        struct Greedy {
            total_slots: usize,
        }
        impl PlacementPolicy for Greedy {
            fn name(&self) -> &'static str {
                "test-greedy"
            }
            fn next_replicas(&mut self, _l: usize, pop: &[u64], _i: u64) -> Vec<usize> {
                let e = pop.len();
                let mut r = vec![1usize; e];
                let mut left = self.total_slots - e;
                while left > 0 {
                    let hot = (0..e).max_by_key(|&c| pop[c] / r[c] as u64).unwrap();
                    r[hot] += 1;
                    left -= 1;
                }
                r
            }
            fn on_world_shrink(&mut self, total_slots: usize) {
                self.total_slots = total_slots;
            }
        }

        let cfg = ModelConfig::tiny();
        let mut corpus = corpus_for(&cfg);
        let mut trainer = Trainer::new(cfg, Box::new(Greedy { total_slots: cfg.total_slots }));
        trainer.train(&mut corpus, 3);

        let new_total = cfg.total_slots - 2; // tiny(): 8 slots, 4 classes
        trainer.shrink_total_slots(new_total);
        for layer in trainer.replicas() {
            assert_eq!(layer.iter().sum::<usize>(), new_total, "squeeze fills the new budget");
            assert!(layer.iter().all(|&c| c >= 1), "squeeze respects the floor");
        }
        // Subsequent steps run against the shrunk budget (step() asserts the
        // policy fills exactly total_slots, so this also checks the hook).
        trainer.train(&mut corpus, 3);
        assert_eq!(trainer.record.losses.len(), 6);
    }

    #[test]
    fn growing_total_slots_keeps_training_consistent() {
        // Mirror of the shrink test: scale-out hands the trainer extra
        // slots, the padding keeps the floor, subsequent steps fill the
        // enlarged budget, and a shrink-then-grow round-trip balances.
        struct Greedy {
            total_slots: usize,
        }
        impl PlacementPolicy for Greedy {
            fn name(&self) -> &'static str {
                "test-greedy"
            }
            fn next_replicas(&mut self, _l: usize, pop: &[u64], _i: u64) -> Vec<usize> {
                let e = pop.len();
                let mut r = vec![1usize; e];
                let mut left = self.total_slots - e;
                while left > 0 {
                    let hot = (0..e).max_by_key(|&c| pop[c] / r[c] as u64).unwrap();
                    r[hot] += 1;
                    left -= 1;
                }
                r
            }
            fn on_world_shrink(&mut self, total_slots: usize) {
                self.total_slots = total_slots;
            }
            fn on_world_grow(&mut self, total_slots: usize) {
                self.total_slots = total_slots;
            }
        }

        let cfg = ModelConfig::tiny();
        let mut corpus = corpus_for(&cfg);
        let mut trainer = Trainer::new(cfg, Box::new(Greedy { total_slots: cfg.total_slots }));
        trainer.train(&mut corpus, 3);

        // Shrink (a rank died), train, then grow past the original budget
        // (two ranks joined).
        trainer.shrink_total_slots(cfg.total_slots - 2);
        trainer.train(&mut corpus, 2);
        let grown = cfg.total_slots + 2;
        trainer.grow_total_slots(grown);
        for layer in trainer.replicas() {
            assert_eq!(layer.iter().sum::<usize>(), grown, "padding fills the new budget");
            assert!(layer.iter().all(|&c| c >= 1), "padding respects the floor");
        }
        trainer.train(&mut corpus, 3);
        assert_eq!(trainer.record.losses.len(), 8);
    }

    #[test]
    fn survival_is_high_with_uniform_data_and_low_with_skew() {
        let cfg = ModelConfig::tiny();
        // capacity_factor 1.0: drops depend on router skew; just check the
        // rate is recorded in (0, 1].
        let mut corpus = corpus_for(&cfg);
        let mut trainer = Trainer::new(
            cfg,
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
        );
        trainer.train(&mut corpus, 3);
        for s in &trainer.record.survival {
            assert!(*s > 0.0 && *s <= 1.0);
        }
    }
}
