//! The full GPT-MoE model: embedding → blocks → final LN → LM head → loss.

use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::embedding::{Embedding, LmHead};
use crate::layernorm::LayerNorm;
use crate::moe::MoeStats;
use symi_tensor::ops::cross_entropy;
use symi_tensor::Matrix;
use symi_workload::Batch;

/// Per-step result of a combined forward/backward pass.
#[derive(Clone, Debug)]
pub struct StepStats {
    /// Cross-entropy loss (mean over tokens).
    pub ce_loss: f32,
    /// Total auxiliary (load-balancing) loss over layers.
    pub aux_loss: f32,
    /// Per-layer MoE statistics.
    pub layers: Vec<MoeStats>,
}

impl StepStats {
    /// The optimization objective (`ce + aux`).
    pub fn total_loss(&self) -> f32 {
        self.ce_loss + self.aux_loss
    }

    /// Overall token survival rate across layers.
    pub fn survival_rate(&self) -> f64 {
        let survived: usize = self.layers.iter().map(|l| l.survived).sum();
        let total: usize = self.layers.iter().map(|l| l.survived + l.dropped).sum();
        if total == 0 {
            1.0
        } else {
            survived as f64 / total as f64
        }
    }
}

/// The GPT-MoE language model.
pub struct GptMoe {
    pub cfg: ModelConfig,
    pub embedding: Embedding,
    pub blocks: Vec<TransformerBlock>,
    pub final_ln: LayerNorm,
    pub head: LmHead,
}

impl GptMoe {
    pub fn new(cfg: ModelConfig) -> Self {
        Self {
            embedding: Embedding::new(cfg.vocab_size, cfg.seq_len, cfg.d_model, cfg.seed),
            blocks: (0..cfg.layers).map(|i| TransformerBlock::new(&cfg, i)).collect(),
            final_ln: LayerNorm::new(cfg.d_model),
            head: LmHead::new(cfg.d_model, cfg.vocab_size, cfg.seed ^ 0xbeef),
            cfg,
        }
    }

    /// Forward + backward over one batch under the given per-layer replica
    /// counts. Gradients accumulate into the layer objects; the caller owns
    /// zeroing and the optimizer step.
    pub fn forward_backward(&mut self, batch: &Batch, replicas: &[Vec<usize>]) -> StepStats {
        assert_eq!(replicas.len(), self.blocks.len(), "one replica vector per layer");
        assert_eq!(batch.seq_len, self.cfg.seq_len, "sequence length mismatch");

        let mut x = self.embedding.forward(&batch.tokens);
        let mut layer_stats = Vec::with_capacity(self.blocks.len());
        for (block, reps) in self.blocks.iter_mut().zip(replicas) {
            let (y, stats) = block.forward(&x, reps);
            layer_stats.push(stats);
            x = y;
        }
        let normed = self.final_ln.forward(&x);
        let logits = self.head.forward(&normed);

        let targets: Vec<usize> = batch.targets.iter().map(|&t| t as usize).collect();
        let (ce_loss, dlogits) = cross_entropy(&logits, &targets);

        let dnormed = self.head.backward(&dlogits);
        let mut dx = self.final_ln.backward(&dnormed);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        self.embedding.backward(&dx);

        let aux_loss = layer_stats.iter().map(|s| s.aux_loss).sum();
        StepStats { ce_loss, aux_loss, layers: layer_stats }
    }

    /// Inference-only loss (no gradients consumed; still runs backward-free
    /// forward internally by reusing forward_backward's plumbing would waste
    /// work, so this recomputes forward only).
    pub fn eval_loss(&mut self, batch: &Batch, replicas: &[Vec<usize>]) -> f32 {
        let mut x = self.embedding.forward(&batch.tokens);
        for (block, reps) in self.blocks.iter_mut().zip(replicas) {
            let (y, _) = block.forward(&x, reps);
            x = y;
        }
        let normed = self.final_ln.forward(&x);
        let logits = self.head.forward(&normed);
        let targets: Vec<usize> = batch.targets.iter().map(|&t| t as usize).collect();
        cross_entropy(&logits, &targets).0
    }

    /// Visits all dense (non-expert) `(param, grad)` pairs in a
    /// deterministic order.
    pub fn visit_dense_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.embedding.visit_params(f);
        for b in &mut self.blocks {
            b.visit_dense_params(f);
        }
        self.final_ln.visit_params(f);
        self.head.visit_params(f);
    }

    pub fn zero_grad(&mut self) {
        self.embedding.zero_grad();
        for b in &mut self.blocks {
            b.zero_grad();
        }
        self.final_ln.zero_grad();
        self.head.zero_grad();
    }

    /// Number of scalar parameters in one expert.
    pub fn expert_param_count(&self) -> usize {
        self.blocks[0].moe.experts[0].param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_workload::{CorpusConfig, DriftingCorpus};

    fn tiny_setup() -> (GptMoe, DriftingCorpus, Vec<Vec<usize>>) {
        let cfg = ModelConfig::tiny();
        let corpus = DriftingCorpus::new(CorpusConfig {
            vocab_size: cfg.vocab_size,
            seq_len: cfg.seq_len,
            batch_size: cfg.batch_size,
            topics: 4,
            ..CorpusConfig::default()
        });
        let replicas = vec![vec![cfg.uniform_replicas(); cfg.experts]; cfg.layers];
        (GptMoe::new(cfg), corpus, replicas)
    }

    #[test]
    fn initial_loss_is_near_uniform_entropy() {
        let (mut model, mut corpus, replicas) = tiny_setup();
        let batch = corpus.next_batch();
        let stats = model.forward_backward(&batch, &replicas);
        let uniform = (model.cfg.vocab_size as f32).ln();
        assert!(
            (stats.ce_loss - uniform).abs() < 0.5,
            "fresh model CE {} should be near ln(V) = {}",
            stats.ce_loss,
            uniform
        );
    }

    #[test]
    fn gradients_are_finite_and_nonzero() {
        let (mut model, mut corpus, replicas) = tiny_setup();
        let batch = corpus.next_batch();
        let _ = model.forward_backward(&batch, &replicas);
        let mut total = 0.0f64;
        let mut count = 0usize;
        model.visit_dense_params(&mut |_, g| {
            for v in g.as_slice() {
                assert!(v.is_finite(), "gradient must be finite");
                total += (*v as f64).abs();
                count += 1;
            }
        });
        assert!(count > 0 && total > 0.0, "dense gradients must flow");
    }

    #[test]
    fn popularity_is_recorded_per_layer() {
        let (mut model, mut corpus, replicas) = tiny_setup();
        let batch = corpus.next_batch();
        let stats = model.forward_backward(&batch, &replicas);
        assert_eq!(stats.layers.len(), model.cfg.layers);
        for l in &stats.layers {
            assert_eq!(l.popularity.iter().sum::<u64>() as usize, batch.token_count());
        }
    }

    #[test]
    fn eval_loss_matches_training_loss_shape() {
        let (mut model, mut corpus, replicas) = tiny_setup();
        let batch = corpus.next_batch();
        let train = model.forward_backward(&batch, &replicas);
        let eval = model.eval_loss(&batch, &replicas);
        assert!((train.ce_loss - eval).abs() < 1e-5);
    }
}
