//! Model configuration.

/// Hyperparameters of the GPT-MoE model and its training setup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub n_heads: usize,
    /// Expert FFN inner dimension.
    pub d_ff: usize,
    /// Transformer blocks (each contains one MoE FFN).
    pub layers: usize,
    /// Expert classes per MoE layer (`E`).
    pub experts: usize,
    /// Experts activated per token (the paper evaluates Top-1; GShard-style
    /// Top-2 is supported as an extension).
    pub top_k: usize,
    pub seq_len: usize,
    /// Sequences per global batch.
    pub batch_size: usize,
    /// Capacity factor (§2.1); the paper evaluates 1.0.
    pub capacity_factor: f32,
    /// Total expert slots in the system (`sN`); per-class capacity is
    /// `capacity_factor × tokens_per_batch / total_slots × replicas`.
    pub total_slots: usize,
    /// Switch-style load-balancing auxiliary loss coefficient.
    pub aux_loss_coef: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Parameter init seed.
    pub seed: u64,
    /// Run routed-expert FFNs on the f16-storage/f32-accumulate GEMM path
    /// (binary16 weight shadows streamed by the kernels — half the weight
    /// traffic; see `symi_tensor::kernels::gemm_nn_f16`). Off by default:
    /// the f32 path stays the bit-exactness reference.
    pub f16_experts: bool,
}

impl ModelConfig {
    /// A deliberately tiny config for unit tests and gradient checks.
    pub fn tiny() -> Self {
        Self {
            vocab_size: 64,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            layers: 1,
            experts: 4,
            top_k: 1,
            seq_len: 8,
            batch_size: 4,
            capacity_factor: 1.0,
            total_slots: 8,
            aux_loss_coef: 0.01,
            lr: 3e-3,
            seed: 42,
            f16_experts: false,
        }
    }

    /// The scaled-down stand-in for the paper's GPT-Small + MoE training
    /// runs (DESIGN.md documents the substitution): 2 blocks, d_model 64,
    /// 16 expert classes over 64 slots — the paper's 16-GPU × 4-slot
    /// evaluation geometry.
    ///
    /// Calibration note: the capacity factor is 0.5, not the paper's nominal
    /// 1.0, because what must match is the *operating point* — the paper's
    /// cf = 1.0 yields ~45% token survival on its 125M model (Table 1),
    /// while this stand-in's router is less skewed and would survive ~80%
    /// at cf = 1.0. cf = 0.5 restores the static baseline to the paper's
    /// measured survival regime (see EXPERIMENTS.md).
    pub fn small_sim() -> Self {
        Self {
            vocab_size: 256,
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            layers: 2,
            experts: 16,
            top_k: 1,
            seq_len: 32,
            batch_size: 32,
            capacity_factor: 0.5,
            total_slots: 64,
            aux_loss_coef: 0.01,
            lr: 3e-3,
            seed: 42,
            f16_experts: false,
        }
    }

    /// Figure 2's geometry: 32 expert classes (over the same 64 slots).
    pub fn fig2_sim() -> Self {
        Self { experts: 32, ..Self::small_sim() }
    }

    /// Tokens per global batch.
    pub fn tokens_per_batch(&self) -> usize {
        self.seq_len * self.batch_size
    }

    /// Per-slot token capacity (§3.4's `slot_capacity`).
    pub fn slot_capacity(&self) -> f32 {
        self.capacity_factor * self.tokens_per_batch() as f32 / self.total_slots as f32
    }

    /// Uniform replicas per class (`r = sN / E`) for static systems.
    pub fn uniform_replicas(&self) -> usize {
        assert_eq!(
            self.total_slots % self.experts,
            0,
            "static replication needs total_slots divisible by experts"
        );
        self.total_slots / self.experts
    }

    /// Head dimension.
    pub fn d_head(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "d_model must divide by n_heads");
        self.d_model / self.n_heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math_matches_paper_formula() {
        let cfg = ModelConfig::small_sim();
        // capacity_factor × tokens_per_batch / (sN)
        let expect = 0.5 * (32.0 * 32.0) / 64.0;
        assert_eq!(cfg.slot_capacity(), expect);
        assert_eq!(cfg.uniform_replicas(), 4);
    }

    #[test]
    fn tiny_config_is_consistent() {
        let cfg = ModelConfig::tiny();
        assert_eq!(cfg.d_head() * cfg.n_heads, cfg.d_model);
        assert_eq!(cfg.uniform_replicas(), 2);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn uneven_slots_panic() {
        let cfg = ModelConfig { total_slots: 7, ..ModelConfig::tiny() };
        let _ = cfg.uniform_replicas();
    }
}
