//! Expert feed-forward network with flat parameter serialization.
//!
//! Experts are the unit SYMI replicates and re-places: their parameters
//! must round-trip through flat `f32` buffers because that is what the
//! optimizer shards, the gradient-collection phase gathers, and the
//! weight-communication phase scatters.

use symi_tensor::ops::{gelu_backward_into, gelu_into, linear_gelu_into};
use symi_tensor::rng::StdRng;
use symi_tensor::{init, HalfMatrix, Matrix};

/// A two-layer GELU FFN: `y = gelu(x·W1 + b1)·W2 + b2`.
///
/// Forward/backward run on the blocked kernels through persistent caches
/// and scratch buffers (`*_into` entry points), so a steady-state training
/// step performs no heap allocation inside the expert.
///
/// With [`set_f16_compute`] enabled, the weight matrices additionally keep
/// binary16 shadows that the forward/backward GEMMs stream at 2 B/element
/// (f32 accumulation — `kernels::gemm_nn_f16`/`gemm_nt_f16`), halving
/// weight traffic in the bandwidth-bound `ffn_down` shape. The shadows are
/// re-encoded from the f32 masters once per forward (O(params), amortized
/// against the O(tokens·params) GEMMs); backward reuses the same shadows,
/// so gradients are taken at exactly the weights the forward used.
/// Parameter gradients (`tn` GEMMs over activations) stay f32.
///
/// [`set_f16_compute`]: ExpertFfn::set_f16_compute
pub struct ExpertFfn {
    pub w1: Matrix,
    pub b1: Matrix,
    pub w2: Matrix,
    pub b2: Matrix,
    pub w1_grad: Matrix,
    pub b1_grad: Matrix,
    pub w2_grad: Matrix,
    pub b2_grad: Matrix,
    cached_x: Matrix,
    cached_pre: Matrix,
    cached_act: Matrix,
    scratch_dact: Matrix,
    scratch_dpre: Matrix,
    f16_compute: bool,
    w1_h: HalfMatrix,
    w2_h: HalfMatrix,
}

impl ExpertFfn {
    pub fn new(d_model: usize, d_ff: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            w1: init::kaiming_normal(d_model, d_ff, &mut rng),
            b1: Matrix::zeros(1, d_ff),
            w2: init::kaiming_normal(d_ff, d_model, &mut rng),
            b2: Matrix::zeros(1, d_model),
            w1_grad: Matrix::zeros(d_model, d_ff),
            b1_grad: Matrix::zeros(1, d_ff),
            w2_grad: Matrix::zeros(d_ff, d_model),
            b2_grad: Matrix::zeros(1, d_model),
            cached_x: Matrix::zeros(0, 0),
            cached_pre: Matrix::zeros(0, 0),
            cached_act: Matrix::zeros(0, 0),
            scratch_dact: Matrix::zeros(0, 0),
            scratch_dpre: Matrix::zeros(0, 0),
            f16_compute: false,
            w1_h: HalfMatrix::zeros(0, 0),
            w2_h: HalfMatrix::zeros(0, 0),
        }
    }

    /// Toggles the f16-storage compute path. Weights that already sit on
    /// the fp16 grid (everything the SYMI optimizer publishes — the wire is
    /// fp16 since the weight-distribute phase) encode losslessly, so for
    /// distributed experts this changes memory traffic, not values; freshly
    /// initialized f32 weights round-to-nearest on encode.
    pub fn set_f16_compute(&mut self, enabled: bool) {
        self.f16_compute = enabled;
        if !enabled {
            self.w1_h = HalfMatrix::zeros(0, 0);
            self.w2_h = HalfMatrix::zeros(0, 0);
        }
    }

    /// Whether the f16-storage compute path is active.
    pub fn f16_compute(&self) -> bool {
        self.f16_compute
    }

    pub fn d_model(&self) -> usize {
        self.w1.rows()
    }

    pub fn d_ff(&self) -> usize {
        self.w1.cols()
    }

    /// Total scalar parameters (`2·d·d_ff + d_ff + d`).
    pub fn param_count(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass into a reusable output buffer. The fused
    /// `linear_gelu` kernel fills both the pre-activation and activation
    /// caches in one pass; backward reuses them without recomputing GELU.
    /// On the f16 path the weight shadows are re-encoded here, so forward
    /// and the following backward see one consistent half-precision weight.
    pub fn forward_into(&mut self, x: &Matrix, y: &mut Matrix) {
        if self.f16_compute {
            self.w1_h.encode_from(&self.w1);
            self.w2_h.encode_from(&self.w2);
            x.matmul_f16_bias_into(&self.w1_h, &self.b1, &mut self.cached_pre);
            gelu_into(&self.cached_pre, &mut self.cached_act);
            self.cached_act.matmul_f16_bias_into(&self.w2_h, &self.b2, y);
        } else {
            linear_gelu_into(x, &self.w1, &self.b1, &mut self.cached_pre, &mut self.cached_act);
            self.cached_act.matmul_bias_into(&self.w2, &self.b2, y);
        }
        self.cached_x.copy_from(x);
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        self.backward_into(dy, &mut dx);
        dx
    }

    /// Backward pass into a reusable `dx` buffer; gradients accumulate
    /// into the `*_grad` fields. The f16 path differentiates through the
    /// *encoded* weights the forward actually used (the `nt` GEMMs stream
    /// the same shadows); parameter gradients are `tn` GEMMs over f32
    /// activations either way.
    pub fn backward_into(&mut self, dy: &Matrix, dx: &mut Matrix) {
        self.cached_act.matmul_tn_acc(dy, &mut self.w2_grad);
        dy.sum_rows_acc(&mut self.b2_grad);
        if self.f16_compute {
            dy.matmul_nt_f16_into(&self.w2_h, &mut self.scratch_dact);
        } else {
            dy.matmul_nt_into(&self.w2, &mut self.scratch_dact);
        }
        gelu_backward_into(&self.cached_pre, &self.scratch_dact, &mut self.scratch_dpre);
        self.cached_x.matmul_tn_acc(&self.scratch_dpre, &mut self.w1_grad);
        self.scratch_dpre.sum_rows_acc(&mut self.b1_grad);
        if self.f16_compute {
            self.scratch_dpre.matmul_nt_f16_into(&self.w1_h, dx);
        } else {
            self.scratch_dpre.matmul_nt_into(&self.w1, dx);
        }
    }

    /// Parameters as one flat buffer: `[W1 | b1 | W2 | b2]`.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flat_params_into(&mut out);
        out
    }

    /// [`ExpertFfn::flat_params`] into a reusable buffer.
    pub fn flat_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(self.w1.as_slice());
        out.extend_from_slice(self.b1.as_slice());
        out.extend_from_slice(self.w2.as_slice());
        out.extend_from_slice(self.b2.as_slice());
    }

    /// Gradients in the same flat layout.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flat_grads_into(&mut out);
        out
    }

    /// [`ExpertFfn::flat_grads`] into a reusable buffer.
    pub fn flat_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(self.w1_grad.as_slice());
        out.extend_from_slice(self.b1_grad.as_slice());
        out.extend_from_slice(self.w2_grad.as_slice());
        out.extend_from_slice(self.b2_grad.as_slice());
    }

    /// Loads parameters from a flat buffer produced by [`flat_params`].
    ///
    /// # Panics
    /// Panics if the buffer length differs from [`param_count`].
    ///
    /// [`flat_params`]: ExpertFfn::flat_params
    /// [`param_count`]: ExpertFfn::param_count
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "flat parameter length mismatch");
        let (a, rest) = flat.split_at(self.w1.len());
        let (b, rest) = rest.split_at(self.b1.len());
        let (c, d) = rest.split_at(self.w2.len());
        self.w1.as_mut_slice().copy_from_slice(a);
        self.b1.as_mut_slice().copy_from_slice(b);
        self.w2.as_mut_slice().copy_from_slice(c);
        self.b2.as_mut_slice().copy_from_slice(d);
    }

    /// Visits `(param, grad)` pairs — used when an expert is trained as a
    /// *dense* parameter (the shared expert of Llama-4/DeepSeek-style
    /// architectures) rather than through the sharded expert optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w1, &mut self.w1_grad);
        f(&mut self.b1, &mut self.b1_grad);
        f(&mut self.w2, &mut self.w2_grad);
        f(&mut self.b2, &mut self.b2_grad);
    }

    pub fn zero_grad(&mut self) {
        self.w1_grad.fill_zero();
        self.b1_grad.fill_zero();
        self.w2_grad.fill_zero();
        self.b2_grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad;

    #[test]
    fn backward_matches_numeric() {
        let mut e = ExpertFfn::new(6, 10, 5);
        let x = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.29).sin());
        let dy = Matrix::from_fn(4, 6, |r, c| ((r + c) as f32 * 0.17).cos());

        let _ = e.forward(&x);
        let dx = e.backward(&dy);

        let mut probe = ExpertFfn::new(6, 10, 5);
        let ndx = numerical_grad(&x, &dy, |xp| probe.forward(xp));
        assert!(dx.max_abs_diff(&ndx) < 2e-2, "dx diff {}", dx.max_abs_diff(&ndx));

        // Spot-check W2's gradient numerically too.
        let w2 = e.w2.clone();
        let ndw2 = numerical_grad(&w2, &dy, |wp| {
            let mut p = ExpertFfn::new(6, 10, 5);
            p.w2 = wp.clone();
            p.forward(&x)
        });
        assert!(e.w2_grad.max_abs_diff(&ndw2) < 2e-2);
    }

    #[test]
    fn flat_round_trip_is_identity() {
        let mut a = ExpertFfn::new(4, 8, 1);
        let b = ExpertFfn::new(4, 8, 2);
        let flat_b = b.flat_params();
        a.load_flat(&flat_b);
        assert_eq!(a.flat_params(), flat_b);
        // Behaviour follows the loaded weights.
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.3);
        let mut b2 = ExpertFfn::new(4, 8, 2);
        assert!(a.forward(&x).max_abs_diff(&b2.forward(&x)) < 1e-6);
    }

    #[test]
    fn param_count_matches_formula() {
        let e = ExpertFfn::new(16, 64, 0);
        assert_eq!(e.param_count(), 2 * 16 * 64 + 64 + 16);
        assert_eq!(e.flat_params().len(), e.param_count());
        assert_eq!(e.flat_grads().len(), e.param_count());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_flat_length_panics() {
        let mut e = ExpertFfn::new(4, 8, 0);
        e.load_flat(&[0.0; 3]);
    }

    #[test]
    fn grads_accumulate() {
        let mut e = ExpertFfn::new(4, 6, 3);
        let x = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let dy = Matrix::from_fn(2, 4, |_, _| 0.5);
        let _ = e.forward(&x);
        let _ = e.backward(&dy);
        let once = e.flat_grads();
        let _ = e.forward(&x);
        let _ = e.backward(&dy);
        let twice = e.flat_grads();
        for (o, t) in once.iter().zip(&twice) {
            assert!((t - 2.0 * o).abs() < 1e-4);
        }
    }
}
