//! The MoE layer: routing, capacity enforcement, token dropping, expert
//! execution, and gated combination — with full manual backprop.
//!
//! Capacity semantics follow §3.4 exactly:
//! `capacity(e) = slot_capacity × replicas(e)` where
//! `slot_capacity = capacity_factor × tokens_per_batch / (sN)`. Assignments
//! that arrive (in position order) after their class's capacity is
//! exhausted are **dropped**: the expert contributes nothing for them, so
//! the surrounding residual connection passes the token through unchanged
//! and no expert gradient flows. This is the mechanism that couples
//! replication policy to convergence speed (Figures 7/8).
//!
//! With `top_k > 1` each token fans out to several experts (GShard-style);
//! a token counts as *dropped* only when every one of its assignments
//! overflowed.

use crate::expert::ExpertFfn;
use crate::router::Router;
use symi_tensor::Matrix;

/// Per-iteration statistics from one MoE layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MoeStats {
    /// Assignments the router made per class (pre-drop popularity — what
    /// the Layer Metadata Store records).
    pub popularity: Vec<u64>,
    /// Tokens with at least one surviving assignment.
    pub survived: usize,
    /// Tokens whose every assignment was dropped.
    pub dropped: usize,
    /// Individual expert assignments kept / dropped (equals the token
    /// counts when `top_k = 1`).
    pub assignments_kept: usize,
    pub assignments_dropped: usize,
    /// Assignments kept per class (`assignments_kept` = its sum); the gap
    /// to `popularity` is the class's capacity-drop count.
    pub kept_per_class: Vec<u64>,
    /// Switch auxiliary loss value.
    pub aux_loss: f32,
}

impl MoeStats {
    pub fn survival_rate(&self) -> f64 {
        let total = self.survived + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.survived as f64 / total as f64
        }
    }
}

/// One MoE layer: a router plus `E` expert FFNs (one canonical instance per
/// class — replica count only affects capacity in this functional model;
/// the distributed engines in `symi`/`symi-baselines` materialize physical
/// replicas).
///
/// Dispatch state (`kept`, per-class expert outputs) and gather/scatter
/// scratch live in persistent buffers, so repeated forward/backward pairs
/// at a fixed batch shape allocate nothing.
pub struct MoeLayer {
    pub router: Router,
    pub experts: Vec<ExpertFfn>,
    /// Optional shared expert (Llama-4/DeepSeek-V3 style, §6): processes
    /// every token unconditionally, is trained as a dense parameter, and is
    /// never replicated or re-placed — SYMI optimizes placement for the
    /// routed experts only.
    pub shared: Option<ExpertFfn>,
    slot_capacity: f32,
    /// Per expert: kept `(token, gate)` entries in processing order
    /// (the dispatch cache backprop replays).
    kept: Vec<Vec<(usize, f32)>>,
    /// Expert output rows per expert, aligned with `kept`.
    expert_out: Vec<Matrix>,
    cache_valid: bool,
    scratch_caps: Vec<usize>,
    scratch_indices: Vec<usize>,
    scratch_xin: Matrix,
    scratch_dexp: Matrix,
    scratch_dxin: Matrix,
    scratch_shared: Matrix,
    scratch_dgates: Vec<Vec<(usize, f32)>>,
}

impl MoeLayer {
    pub fn new(
        d_model: usize,
        d_ff: usize,
        experts: usize,
        top_k: usize,
        slot_capacity: f32,
        aux_coef: f32,
        seed: u64,
    ) -> Self {
        Self {
            router: Router::new(d_model, experts, top_k, aux_coef, seed),
            experts: (0..experts)
                .map(|e| ExpertFfn::new(d_model, d_ff, seed ^ (0xe0 + e as u64)))
                .collect(),
            shared: None,
            slot_capacity,
            kept: (0..experts).map(|_| Vec::new()).collect(),
            expert_out: (0..experts).map(|_| Matrix::zeros(0, 0)).collect(),
            cache_valid: false,
            scratch_caps: Vec::new(),
            scratch_indices: Vec::new(),
            scratch_xin: Matrix::zeros(0, 0),
            scratch_dexp: Matrix::zeros(0, 0),
            scratch_dxin: Matrix::zeros(0, 0),
            scratch_shared: Matrix::zeros(0, 0),
            scratch_dgates: Vec::new(),
        }
    }

    /// Adds a shared expert that every token passes through in addition to
    /// its routed expert(s).
    pub fn with_shared_expert(mut self, d_ff: usize, seed: u64) -> Self {
        let d_model = self.router.w.rows();
        self.shared = Some(ExpertFfn::new(d_model, d_ff, seed ^ 0x5a4e));
        self
    }

    /// Switches every *routed* expert to the f16-storage compute path (the
    /// shared expert is dense state and stays f32). Builder form:
    /// `MoeLayer::new(..).with_f16_experts(cfg.f16_experts)`.
    pub fn with_f16_experts(mut self, enabled: bool) -> Self {
        self.set_f16_experts(enabled);
        self
    }

    /// See [`MoeLayer::with_f16_experts`].
    pub fn set_f16_experts(&mut self, enabled: bool) {
        for e in &mut self.experts {
            e.set_f16_compute(enabled);
        }
    }

    pub fn expert_classes(&self) -> usize {
        self.experts.len()
    }

    /// Per-class token capacity under `replicas`.
    pub fn capacity(&self, replicas: usize) -> usize {
        (self.slot_capacity * replicas as f32).floor() as usize
    }

    /// Forward pass. `replicas[e]` scales class `e`'s capacity.
    pub fn forward(&mut self, x: &Matrix, replicas: &[usize]) -> (Matrix, MoeStats) {
        assert_eq!(replicas.len(), self.experts.len(), "one replica count per class");
        let routing = self.router.forward(x);
        let t = x.rows();

        // Capacity enforcement in arrival order, per assignment.
        self.scratch_caps.clear();
        self.scratch_caps
            .extend(replicas.iter().map(|&r| (self.slot_capacity * r as f32).floor() as usize));
        for v in &mut self.kept {
            v.clear();
        }
        let mut token_survived = vec![false; t];
        let mut assignments_dropped = 0usize;
        for (tok, picks) in routing.assignment.iter().enumerate() {
            for &(class, gate) in picks {
                if self.kept[class].len() < self.scratch_caps[class] {
                    self.kept[class].push((tok, gate));
                    token_survived[tok] = true;
                } else {
                    assignments_dropped += 1;
                }
            }
        }
        let assignments_kept: usize = self.kept.iter().map(Vec::len).sum();
        let survived = token_survived.iter().filter(|&&s| s).count();

        // Run each expert on its surviving tokens; scale by the gate.
        let mut y = Matrix::zeros(t, x.cols());
        for (class, expert) in self.experts.iter_mut().enumerate() {
            let kept = &self.kept[class];
            if kept.is_empty() {
                self.expert_out[class].resize_to(0, x.cols());
                continue;
            }
            self.scratch_indices.clear();
            self.scratch_indices.extend(kept.iter().map(|&(tok, _)| tok));
            x.gather_rows_into(&self.scratch_indices, &mut self.scratch_xin);
            let out = &mut self.expert_out[class];
            expert.forward_into(&self.scratch_xin, out);
            for (i, &(tok, gate)) in kept.iter().enumerate() {
                y.axpy_row_from(tok, gate, out, i);
            }
        }

        if let Some(shared) = &mut self.shared {
            shared.forward_into(x, &mut self.scratch_shared);
            y.axpy(1.0, &self.scratch_shared);
        }

        let stats = MoeStats {
            popularity: routing.popularity.clone(),
            survived,
            dropped: t - survived,
            assignments_kept,
            assignments_dropped,
            kept_per_class: self.kept.iter().map(|v| v.len() as u64).collect(),
            aux_loss: routing.aux_loss,
        };
        self.cache_valid = true;
        (y, stats)
    }

    /// Backward pass; returns `dX`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        assert!(self.cache_valid, "backward before forward");
        self.cache_valid = false;
        let t = dy.rows();
        let mut dx = Matrix::zeros(t, dy.cols());

        // Gate gradients, per token: only kept assignments contribute.
        self.scratch_dgates.resize_with(t, Vec::new);
        for g in &mut self.scratch_dgates {
            g.clear();
        }
        for (class, expert) in self.experts.iter_mut().enumerate() {
            let kept = &self.kept[class];
            if kept.is_empty() {
                continue;
            }
            // Upstream into the expert: g_t · dy_t.
            self.scratch_dexp.resize_to(kept.len(), dy.cols());
            self.scratch_dexp.fill_zero();
            for (i, &(tok, gate)) in kept.iter().enumerate() {
                self.scratch_dexp.axpy_row_from(i, gate, dy, tok);
                let out_row = self.expert_out[class].row(i);
                let dgate: f32 = dy.row(tok).iter().zip(out_row).map(|(a, b)| a * b).sum();
                self.scratch_dgates[tok].push((class, dgate));
            }
            expert.backward_into(&self.scratch_dexp, &mut self.scratch_dxin);
            for (i, &(tok, _)) in kept.iter().enumerate() {
                dx.axpy_row_from(tok, 1.0, &self.scratch_dxin, i);
            }
        }

        // Shared-expert path: every token, ungated.
        if let Some(shared) = &mut self.shared {
            shared.backward_into(dy, &mut self.scratch_dxin);
            dx.axpy(1.0, &self.scratch_dxin);
        }

        // Router path (gate + aux gradients): dX += dX_router, reusing the
        // shared scratch as the router's output buffer.
        self.router.backward_into(&self.scratch_dgates, &mut self.scratch_dxin);
        dx.axpy(1.0, &self.scratch_dxin);
        dx
    }

    pub fn zero_grad(&mut self) {
        self.router.zero_grad();
        for e in &mut self.experts {
            e.zero_grad();
        }
        if let Some(shared) = &mut self.shared {
            shared.zero_grad();
        }
    }

    /// Visits dense parameters (router and, if present, the shared expert)
    /// — routed expert parameters are owned by the expert optimizer
    /// machinery.
    pub fn visit_dense_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.router.visit_params(f);
        if let Some(shared) = &mut self.shared {
            shared.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad_scalar;

    fn layer(slot_cap: f32) -> MoeLayer {
        MoeLayer::new(6, 10, 3, 1, slot_cap, 0.0, 9)
    }

    fn layer_topk(slot_cap: f32, k: usize) -> MoeLayer {
        MoeLayer::new(6, 10, 3, k, slot_cap, 0.0, 9)
    }

    #[test]
    fn no_drops_with_generous_capacity() {
        let mut l = layer(100.0);
        let x = Matrix::from_fn(12, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let (_, stats) = l.forward(&x, &[1, 1, 1]);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.survived, 12);
        assert_eq!(stats.popularity.iter().sum::<u64>(), 12);
        assert_eq!(stats.assignments_kept, 12);
    }

    #[test]
    fn capacity_caps_each_class() {
        let mut l = layer(2.0);
        let x = Matrix::from_fn(12, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let (_, stats) = l.forward(&x, &[1, 1, 1]);
        assert!(stats.assignments_kept <= 6);
        assert_eq!(stats.survived + stats.dropped, 12);
    }

    #[test]
    fn replicas_scale_capacity() {
        let mut l = layer(2.0);
        let x = Matrix::from_fn(12, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let (_, uniform) = l.forward(&x, &[1, 1, 1]);
        let (_, boosted) = l.forward(&x, &[4, 4, 4]);
        assert!(boosted.survived >= uniform.survived);
        assert_eq!(boosted.dropped, 0, "4 replicas × cap 2 ≥ 12 tokens total");
    }

    #[test]
    fn dropped_tokens_produce_zero_output_and_gradient() {
        let mut l = layer(0.0); // capacity zero: every token drops
        let x = Matrix::from_fn(6, 6, |r, c| ((r + c) as f32 * 0.3).cos());
        let (y, stats) = l.forward(&x, &[1, 1, 1]);
        assert_eq!(stats.survived, 0);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        let dy = Matrix::from_fn(6, 6, |_, _| 1.0);
        let _ = l.backward(&dy);
        for e in &l.experts {
            assert!(e.flat_grads().iter().all(|&g| g == 0.0), "no expert grads on drops");
        }
    }

    #[test]
    fn backward_matches_numeric_loss() {
        // Scalar loss = Σ (y ⊙ dy) with capacity high enough to keep all
        // tokens (so the kept set — non-differentiable — is stable).
        let mut l = layer(100.0);
        let x = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) as f32 * 0.21).sin());
        let dy = Matrix::from_fn(5, 6, |r, c| ((r + c) as f32 * 0.4).cos());

        let (_, _) = l.forward(&x, &[1, 1, 1]);
        let dx = l.backward(&dy);

        let ndx = numerical_grad_scalar(&x, |xp| {
            let mut probe = layer(100.0);
            let (y, _) = probe.forward(xp, &[1, 1, 1]);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 3e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn top2_backward_matches_numeric_loss() {
        let mut l = layer_topk(100.0, 2);
        let x = Matrix::from_fn(5, 6, |r, c| ((r * 6 + c) as f32 * 0.27).sin());
        let dy = Matrix::from_fn(5, 6, |r, c| ((r * 2 + c) as f32 * 0.33).cos());

        let (_, stats) = l.forward(&x, &[1, 1, 1]);
        assert_eq!(stats.popularity.iter().sum::<u64>(), 10, "2 assignments per token");
        let dx = l.backward(&dy);

        let ndx = numerical_grad_scalar(&x, |xp| {
            let mut probe = layer_topk(100.0, 2);
            let (y, _) = probe.forward(xp, &[1, 1, 1]);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 3e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn top2_survives_partial_drops() {
        // Capacity 1 per class: most tokens keep at most one of their two
        // assignments; a token is only "dropped" if both overflowed.
        let mut l = layer_topk(1.0, 2);
        let x = Matrix::from_fn(9, 6, |r, c| ((r * 2 + c) as f32 * 0.5).sin());
        let (_, stats) = l.forward(&x, &[1, 1, 1]);
        assert_eq!(stats.assignments_kept + stats.assignments_dropped, 18);
        assert!(stats.assignments_kept <= 3, "one per class");
        assert!(
            stats.survived >= stats.assignments_kept.min(9) / 2,
            "kept assignments imply surviving tokens"
        );
    }

    #[test]
    fn shared_expert_processes_every_token_even_dropped_ones() {
        let mut l = layer(0.0).with_shared_expert(10, 77); // all routed drops
        let x = Matrix::from_fn(6, 6, |r, c| ((r + c) as f32 * 0.3).cos());
        let (y, stats) = l.forward(&x, &[1, 1, 1]);
        assert_eq!(stats.survived, 0, "routed path fully dropped");
        assert!(
            y.as_slice().iter().any(|&v| v != 0.0),
            "shared expert must still transform dropped tokens"
        );
        // Gradient reaches the shared expert for every token.
        let dy = Matrix::from_fn(6, 6, |_, _| 1.0);
        let _ = l.backward(&dy);
        let shared = l.shared.as_ref().unwrap();
        assert!(shared.w1_grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn shared_expert_backward_matches_numeric() {
        let mut l = layer(100.0).with_shared_expert(10, 5);
        let x = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.23).sin());
        let dy = Matrix::from_fn(4, 6, |r, c| ((r + 2 * c) as f32 * 0.35).cos());
        let (_, _) = l.forward(&x, &[1, 1, 1]);
        let dx = l.backward(&dy);
        let ndx = numerical_grad_scalar(&x, |xp| {
            let mut probe = layer(100.0).with_shared_expert(10, 5);
            let (y, _) = probe.forward(xp, &[1, 1, 1]);
            y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| a * b).sum()
        });
        assert!(dx.max_abs_diff(&ndx) < 3e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn popularity_counts_are_pre_drop() {
        let mut l = layer(0.0);
        let x = Matrix::from_fn(9, 6, |r, c| ((r * 2 + c) as f32 * 0.5).sin());
        let (_, stats) = l.forward(&x, &[1, 1, 1]);
        // Even though everything dropped, popularity reflects assignments.
        assert_eq!(stats.popularity.iter().sum::<u64>(), 9);
    }

    #[test]
    fn drop_order_is_positional() {
        // With capacity 1 per class, the *first* token routed to a class
        // survives and later ones drop.
        let mut l = layer(1.0);
        let x = Matrix::from_fn(8, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let (y, _) = l.forward(&x, &[1, 1, 1]);
        let cache_kept: Vec<usize> = {
            let mut probe = layer(1.0);
            let routing = probe.router.forward(&x);
            let mut first = vec![None; 3];
            for (t, picks) in routing.assignment.iter().enumerate() {
                let a = picks[0].0;
                if first[a].is_none() {
                    first[a] = Some(t);
                }
            }
            first.into_iter().flatten().collect()
        };
        for tok in cache_kept {
            assert!(
                y.row(tok).iter().any(|&v| v != 0.0),
                "first-arriving token {tok} must be processed"
            );
        }
    }
}
