//! # symi-model
//!
//! A from-scratch GPT-style Mixture-of-Experts transformer with manual
//! backpropagation, built for studying *training systems* rather than for
//! SOTA quality: token/positional embeddings, multi-head causal attention,
//! LayerNorm, a learned top-1 router, per-expert FFNs with the capacity /
//! token-dropping semantics of Switch Transformer (§2.1 of the SYMI paper),
//! and an Adam training loop.
//!
//! The architecture is deliberately scaled to laptop size (the paper's
//! 125M–760M GPT configurations exist in `symi-netsim` as *cost* configs for
//! latency modeling). What matters for the reproduction is preserved
//! exactly:
//!
//! - the router dynamically assigns every token to an expert class, so
//!   expert popularity is skewed and drifts as both the data distribution
//!   and the router itself evolve (Figure 2);
//! - each class has `capacity = slot_capacity × replicas`, and tokens over
//!   capacity are **dropped** — they bypass the expert through the residual
//!   connection and contribute no expert gradient (§3.4);
//! - consequently the *only* difference between training systems is which
//!   tokens get dropped, which is precisely the mechanism that makes
//!   adaptive replication converge faster (Figures 7/8).
//!
//! Every layer is a struct with `forward` (caching activations) and
//! `backward` (returning input gradients, accumulating parameter
//! gradients), and every backward pass is pinned by a numerical-gradient
//! test.

pub mod attention;
pub mod block;
pub mod config;
pub mod embedding;
pub mod expert;
pub mod layernorm;
pub mod model;
pub mod moe;
pub mod router;
pub mod train;

pub use config::ModelConfig;
pub use model::GptMoe;
pub use train::{Checkpoint, PlacementPolicy, TrainRecord, Trainer, UniformPolicy};
