//! Multi-head causal self-attention with manual backprop.
//!
//! Operates on a `(batch·seq_len) × d_model` activation matrix; sequences
//! are independent, so forward/backward loop over them. Head projections
//! use column slices of fused `Wq/Wk/Wv` matrices.

use symi_tensor::ops::{softmax_rows_backward_into, softmax_rows_into};
use symi_tensor::rng::StdRng;
use symi_tensor::{init, Matrix};

/// Per-sequence forward cache. All matrices are persistent buffers reused
/// across iterations (`forward` refills them in place).
struct SeqCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Softmax attention probabilities per head.
    probs: Vec<Matrix>,
    /// Concatenated head outputs (pre-`Wo`).
    concat: Matrix,
}

impl SeqCache {
    fn empty() -> Self {
        Self {
            x: Matrix::zeros(0, 0),
            q: Matrix::zeros(0, 0),
            k: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            probs: Vec::new(),
            concat: Matrix::zeros(0, 0),
        }
    }
}

/// Multi-head causal self-attention layer.
///
/// Sequence caches and per-head scratch are persistent, so steady-state
/// iterations at a fixed batch shape perform no heap allocation.
pub struct CausalAttention {
    pub wq: Matrix,
    pub wk: Matrix,
    pub wv: Matrix,
    pub wo: Matrix,
    pub wq_grad: Matrix,
    pub wk_grad: Matrix,
    pub wv_grad: Matrix,
    pub wo_grad: Matrix,
    n_heads: usize,
    seq_len: usize,
    cache: Vec<SeqCache>,
    /// Sequences the cache currently holds (≤ `cache.len()`, which only
    /// grows; lets a smaller batch reuse the larger allocation).
    cached_seqs: usize,
    scratch_qh: Matrix,
    scratch_kh: Matrix,
    scratch_vh: Matrix,
    scratch_scores: Matrix,
    scratch_oh: Matrix,
    scratch_y: Matrix,
    scratch_dys: Matrix,
    scratch_dconcat: Matrix,
    scratch_dq: Matrix,
    scratch_dk: Matrix,
    scratch_dv: Matrix,
    scratch_dp: Matrix,
    scratch_ds: Matrix,
    scratch_dh: Matrix,
    scratch_dxs: Matrix,
    scratch_dw: Matrix,
}

impl CausalAttention {
    pub fn new(d_model: usize, n_heads: usize, seq_len: usize, seed: u64) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide by n_heads");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            wq: init::xavier_uniform(d_model, d_model, &mut rng),
            wk: init::xavier_uniform(d_model, d_model, &mut rng),
            wv: init::xavier_uniform(d_model, d_model, &mut rng),
            wo: init::xavier_uniform(d_model, d_model, &mut rng),
            wq_grad: Matrix::zeros(d_model, d_model),
            wk_grad: Matrix::zeros(d_model, d_model),
            wv_grad: Matrix::zeros(d_model, d_model),
            wo_grad: Matrix::zeros(d_model, d_model),
            n_heads,
            seq_len,
            cache: Vec::new(),
            cached_seqs: 0,
            scratch_qh: Matrix::zeros(0, 0),
            scratch_kh: Matrix::zeros(0, 0),
            scratch_vh: Matrix::zeros(0, 0),
            scratch_scores: Matrix::zeros(0, 0),
            scratch_oh: Matrix::zeros(0, 0),
            scratch_y: Matrix::zeros(0, 0),
            scratch_dys: Matrix::zeros(0, 0),
            scratch_dconcat: Matrix::zeros(0, 0),
            scratch_dq: Matrix::zeros(0, 0),
            scratch_dk: Matrix::zeros(0, 0),
            scratch_dv: Matrix::zeros(0, 0),
            scratch_dp: Matrix::zeros(0, 0),
            scratch_ds: Matrix::zeros(0, 0),
            scratch_dh: Matrix::zeros(0, 0),
            scratch_dxs: Matrix::zeros(0, 0),
            scratch_dw: Matrix::zeros(0, 0),
        }
    }

    fn d_model(&self) -> usize {
        self.wq.rows()
    }

    fn d_head(&self) -> usize {
        self.d_model() / self.n_heads
    }

    /// Forward over a `(batch·L) × d_model` input.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let l = self.seq_len;
        assert_eq!(x.rows() % l, 0, "input must tile whole sequences");
        let batch = x.rows() / l;
        let d = self.d_model();
        let dh = self.d_head();
        let heads = self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Matrix::zeros(x.rows(), d);
        if self.cache.len() < batch {
            self.cache.resize_with(batch, SeqCache::empty);
        }
        self.cached_seqs = batch;

        for b in 0..batch {
            let c = &mut self.cache[b];
            // Sequence b's rows are contiguous: copy the block directly.
            c.x.resize_to(l, d);
            c.x.as_mut_slice().copy_from_slice(&x.as_slice()[b * l * d..(b + 1) * l * d]);
            c.x.matmul_into(&self.wq, &mut c.q);
            c.x.matmul_into(&self.wk, &mut c.k);
            c.x.matmul_into(&self.wv, &mut c.v);

            c.concat.resize_to(l, d);
            if c.probs.len() < heads {
                c.probs.resize_with(heads, || Matrix::zeros(0, 0));
            }
            for h in 0..heads {
                copy_head_into(&c.q, h, dh, &mut self.scratch_qh);
                copy_head_into(&c.k, h, dh, &mut self.scratch_kh);
                copy_head_into(&c.v, h, dh, &mut self.scratch_vh);
                self.scratch_qh.matmul_nt_into(&self.scratch_kh, &mut self.scratch_scores);
                self.scratch_scores.scale(scale);
                // Causal mask: position i attends to j ≤ i.
                for i in 0..l {
                    for j in i + 1..l {
                        self.scratch_scores[(i, j)] = -1.0e9;
                    }
                }
                softmax_rows_into(&self.scratch_scores, &mut c.probs[h]);
                c.probs[h].matmul_into(&self.scratch_vh, &mut self.scratch_oh);
                set_head(&mut c.concat, &self.scratch_oh, h, dh);
            }
            c.concat.matmul_into(&self.wo, &mut self.scratch_y);
            out.as_mut_slice()[b * l * d..(b + 1) * l * d]
                .copy_from_slice(self.scratch_y.as_slice());
        }
        out
    }

    /// Backward; returns `dX` and accumulates weight gradients.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let l = self.seq_len;
        let batch = dy.rows() / l;
        assert_eq!(batch, self.cached_seqs, "backward without matching forward");
        let d = self.d_model();
        let dh = self.d_head();
        let heads = self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut dx = Matrix::zeros(dy.rows(), d);

        for b in 0..batch {
            self.scratch_dys.resize_to(l, d);
            self.scratch_dys
                .as_mut_slice()
                .copy_from_slice(&dy.as_slice()[b * l * d..(b + 1) * l * d]);
            let c = &self.cache[b];

            // Y = concat · Wo
            c.concat.matmul_tn_acc(&self.scratch_dys, &mut self.wo_grad);
            self.scratch_dys.matmul_nt_into(&self.wo, &mut self.scratch_dconcat);

            self.scratch_dq.resize_to(l, d);
            self.scratch_dk.resize_to(l, d);
            self.scratch_dv.resize_to(l, d);
            for h in 0..heads {
                // doh: upstream gradient of this head's output block.
                copy_head_into(&self.scratch_dconcat, h, dh, &mut self.scratch_dh);
                copy_head_into(&c.v, h, dh, &mut self.scratch_vh);
                copy_head_into(&c.q, h, dh, &mut self.scratch_qh);
                copy_head_into(&c.k, h, dh, &mut self.scratch_kh);
                let p = &c.probs[h];

                // Oh = P · Vh
                self.scratch_dh.matmul_nt_into(&self.scratch_vh, &mut self.scratch_dp);
                p.matmul_tn_into(&self.scratch_dh, &mut self.scratch_oh); // dVh
                set_head(&mut self.scratch_dv, &self.scratch_oh, h, dh);
                // P = softmax(S); S = scale · Qh Khᵀ (masked entries have
                // zero probability so their score grads vanish).
                softmax_rows_backward_into(p, &self.scratch_dp, &mut self.scratch_ds);
                self.scratch_ds.scale(scale);
                self.scratch_ds.matmul_into(&self.scratch_kh, &mut self.scratch_oh); // dQh
                set_head(&mut self.scratch_dq, &self.scratch_oh, h, dh);
                self.scratch_ds.matmul_tn_into(&self.scratch_qh, &mut self.scratch_oh); // dKh
                set_head(&mut self.scratch_dk, &self.scratch_oh, h, dh);
            }

            // Q = X Wq etc.
            c.x.matmul_tn_acc(&self.scratch_dq, &mut self.wq_grad);
            c.x.matmul_tn_acc(&self.scratch_dk, &mut self.wk_grad);
            c.x.matmul_tn_acc(&self.scratch_dv, &mut self.wv_grad);
            self.scratch_dq.matmul_nt_into(&self.wq, &mut self.scratch_dxs);
            self.scratch_dk.matmul_nt_into(&self.wk, &mut self.scratch_dw);
            self.scratch_dxs.axpy(1.0, &self.scratch_dw);
            self.scratch_dv.matmul_nt_into(&self.wv, &mut self.scratch_dw);
            self.scratch_dxs.axpy(1.0, &self.scratch_dw);

            dx.as_mut_slice()[b * l * d..(b + 1) * l * d]
                .copy_from_slice(self.scratch_dxs.as_slice());
        }
        dx
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wq, &mut self.wq_grad);
        f(&mut self.wk, &mut self.wk_grad);
        f(&mut self.wv, &mut self.wv_grad);
        f(&mut self.wo, &mut self.wo_grad);
    }

    pub fn zero_grad(&mut self) {
        self.wq_grad.fill_zero();
        self.wk_grad.fill_zero();
        self.wv_grad.fill_zero();
        self.wo_grad.fill_zero();
    }
}

/// Copies head `h`'s column block (`dh` wide) of `m` into `out`, reusing
/// `out`'s allocation.
fn copy_head_into(m: &Matrix, h: usize, dh: usize, out: &mut Matrix) {
    out.resize_to(m.rows(), dh);
    for r in 0..m.rows() {
        out.row_mut(r).copy_from_slice(&m.row(r)[h * dh..(h + 1) * dh]);
    }
}

/// Writes `src` into head `h`'s column block of `dst` (blocks are disjoint
/// across heads, so a copy replaces the old zero-then-add sequence).
fn set_head(dst: &mut Matrix, src: &Matrix, h: usize, dh: usize) {
    for r in 0..src.rows() {
        dst.row_mut(r)[h * dh..(h + 1) * dh].copy_from_slice(src.row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad;

    fn forward_fn(attn_template: &CausalAttention, x: &Matrix) -> Matrix {
        // Rebuild a throwaway layer sharing the same weights for numeric
        // probing (forward mutates the cache, so we clone).
        let mut a = CausalAttention::new(
            attn_template.d_model(),
            attn_template.n_heads,
            attn_template.seq_len,
            0,
        );
        a.wq = attn_template.wq.clone();
        a.wk = attn_template.wk.clone();
        a.wv = attn_template.wv.clone();
        a.wo = attn_template.wo.clone();
        a.forward(x)
    }

    #[test]
    fn causality_holds() {
        // Changing a later token must not affect earlier outputs.
        let mut attn = CausalAttention::new(8, 2, 4, 7);
        let x1 = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.1).sin());
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2[(3, c)] += 1.0; // perturb the last position
        }
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        for i in 0..3 {
            assert_eq!(y1.row(i), y2.row(i), "position {i} must ignore the future");
        }
        assert_ne!(y1.row(3), y2.row(3));
    }

    #[test]
    fn sequences_in_a_batch_are_independent() {
        let mut attn = CausalAttention::new(8, 2, 4, 7);
        let x = Matrix::from_fn(8, 8, |r, c| ((r + c) as f32 * 0.2).cos());
        let y_batch = attn.forward(&x);
        let first: Vec<usize> = (0..4).collect();
        let y_single = attn.forward(&x.gather_rows(&first));
        for i in 0..4 {
            assert_eq!(y_batch.row(i), y_single.row(i));
        }
    }

    #[test]
    fn backward_input_grad_matches_numeric() {
        let mut attn = CausalAttention::new(8, 2, 4, 11);
        let x = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        let dy = Matrix::from_fn(8, 8, |r, c| ((r + 2 * c) as f32 * 0.13).cos());

        let _ = attn.forward(&x);
        let dx = attn.backward(&dy);

        let probe = CausalAttention::new(8, 2, 4, 11);
        let ndx = numerical_grad(&x, &dy, |xp| forward_fn(&probe, xp));
        assert!(dx.max_abs_diff(&ndx) < 2e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn backward_weight_grads_match_numeric() {
        let mut attn = CausalAttention::new(8, 2, 4, 13);
        let x = Matrix::from_fn(4, 8, |r, c| ((r * 5 + c) as f32 * 0.19).sin());
        let dy = Matrix::from_fn(4, 8, |r, c| ((r * 2 + c) as f32 * 0.11).cos());

        let _ = attn.forward(&x);
        let _ = attn.backward(&dy);

        for (name, grad, probe_w) in [
            ("wq", attn.wq_grad.clone(), 0usize),
            ("wk", attn.wk_grad.clone(), 1),
            ("wv", attn.wv_grad.clone(), 2),
            ("wo", attn.wo_grad.clone(), 3),
        ] {
            let base = [&attn.wq, &attn.wk, &attn.wv, &attn.wo][probe_w].clone();
            let ngrad = numerical_grad(&base, &dy, |wp| {
                let mut a = CausalAttention::new(8, 2, 4, 0);
                a.wq = attn.wq.clone();
                a.wk = attn.wk.clone();
                a.wv = attn.wv.clone();
                a.wo = attn.wo.clone();
                match probe_w {
                    0 => a.wq = wp.clone(),
                    1 => a.wk = wp.clone(),
                    2 => a.wv = wp.clone(),
                    _ => a.wo = wp.clone(),
                }
                a.forward(&x)
            });
            assert!(
                grad.max_abs_diff(&ngrad) < 2e-2,
                "{name} grad diff {}",
                grad.max_abs_diff(&ngrad)
            );
        }
    }

    #[test]
    fn attention_rows_mix_only_the_past() {
        // With V = identity-ish embedding, output at position 0 equals
        // V's row 0 transformed — i.e. softmax over a single element.
        let mut attn = CausalAttention::new(4, 1, 3, 3);
        let x = Matrix::from_fn(3, 4, |r, c| if r == c { 1.0 } else { 0.1 });
        let _ = attn.forward(&x);
        // Probability matrix of the only head: row 0 must be [1, 0, 0].
        let p = &attn.cache[0].probs[0];
        assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(p[(0, 1)].abs() < 1e-6 && p[(0, 2)].abs() < 1e-6);
    }
}
