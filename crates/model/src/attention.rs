//! Multi-head causal self-attention with manual backprop.
//!
//! Operates on a `(batch·seq_len) × d_model` activation matrix; sequences
//! are independent, so forward/backward loop over them. Head projections
//! use column slices of fused `Wq/Wk/Wv` matrices.

use symi_tensor::ops::{softmax_rows, softmax_rows_backward};
use symi_tensor::rng::StdRng;
use symi_tensor::{init, Matrix};

/// Per-sequence forward cache.
struct SeqCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Softmax attention probabilities per head.
    probs: Vec<Matrix>,
    /// Concatenated head outputs (pre-`Wo`).
    concat: Matrix,
}

/// Multi-head causal self-attention layer.
pub struct CausalAttention {
    pub wq: Matrix,
    pub wk: Matrix,
    pub wv: Matrix,
    pub wo: Matrix,
    pub wq_grad: Matrix,
    pub wk_grad: Matrix,
    pub wv_grad: Matrix,
    pub wo_grad: Matrix,
    n_heads: usize,
    seq_len: usize,
    cache: Vec<SeqCache>,
}

impl CausalAttention {
    pub fn new(d_model: usize, n_heads: usize, seq_len: usize, seed: u64) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide by n_heads");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            wq: init::xavier_uniform(d_model, d_model, &mut rng),
            wk: init::xavier_uniform(d_model, d_model, &mut rng),
            wv: init::xavier_uniform(d_model, d_model, &mut rng),
            wo: init::xavier_uniform(d_model, d_model, &mut rng),
            wq_grad: Matrix::zeros(d_model, d_model),
            wk_grad: Matrix::zeros(d_model, d_model),
            wv_grad: Matrix::zeros(d_model, d_model),
            wo_grad: Matrix::zeros(d_model, d_model),
            n_heads,
            seq_len,
            cache: Vec::new(),
        }
    }

    fn d_model(&self) -> usize {
        self.wq.rows()
    }

    fn d_head(&self) -> usize {
        self.d_model() / self.n_heads
    }

    /// Extracts head `h`'s column block from an `L × d_model` matrix.
    fn head(&self, m: &Matrix, h: usize) -> Matrix {
        let dh = self.d_head();
        Matrix::from_fn(m.rows(), dh, |r, c| m[(r, h * dh + c)])
    }

    /// Adds a head block back into an `L × d_model` matrix.
    fn add_head(&self, dst: &mut Matrix, src: &Matrix, h: usize) {
        let dh = self.d_head();
        for r in 0..src.rows() {
            for c in 0..dh {
                dst[(r, h * dh + c)] += src[(r, c)];
            }
        }
    }

    /// Forward over a `(batch·L) × d_model` input.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let l = self.seq_len;
        assert_eq!(x.rows() % l, 0, "input must tile whole sequences");
        let batch = x.rows() / l;
        let scale = 1.0 / (self.d_head() as f32).sqrt();
        let mut out = Matrix::zeros(x.rows(), self.d_model());
        self.cache.clear();

        for b in 0..batch {
            let rows: Vec<usize> = (b * l..(b + 1) * l).collect();
            let xs = x.gather_rows(&rows);
            let q = xs.matmul(&self.wq);
            let k = xs.matmul(&self.wk);
            let v = xs.matmul(&self.wv);

            let mut concat = Matrix::zeros(l, self.d_model());
            let mut probs = Vec::with_capacity(self.n_heads);
            for h in 0..self.n_heads {
                let qh = self.head(&q, h);
                let kh = self.head(&k, h);
                let vh = self.head(&v, h);
                let mut scores = qh.matmul_nt(&kh);
                scores.scale(scale);
                // Causal mask: position i attends to j ≤ i.
                for i in 0..l {
                    for j in i + 1..l {
                        scores[(i, j)] = -1.0e9;
                    }
                }
                let p = softmax_rows(&scores);
                let oh = p.matmul(&vh);
                self.add_head(&mut concat, &oh, h);
                probs.push(p);
            }
            let y = concat.matmul(&self.wo);
            for (i, &row) in rows.iter().enumerate() {
                out.copy_row_from(row, &y, i);
            }
            self.cache.push(SeqCache { x: xs, q, k, v, probs, concat });
        }
        out
    }

    /// Backward; returns `dX` and accumulates weight gradients.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let l = self.seq_len;
        let batch = dy.rows() / l;
        assert_eq!(batch, self.cache.len(), "backward without matching forward");
        let scale = 1.0 / (self.d_head() as f32).sqrt();
        let mut dx = Matrix::zeros(dy.rows(), self.d_model());

        for b in 0..batch {
            let rows: Vec<usize> = (b * l..(b + 1) * l).collect();
            let dys = dy.gather_rows(&rows);
            let c = &self.cache[b];

            // Y = concat · Wo
            self.wo_grad.axpy(1.0, &c.concat.matmul_tn(&dys));
            let dconcat = dys.matmul_nt(&self.wo);

            let mut dq = Matrix::zeros(l, self.d_model());
            let mut dk = Matrix::zeros(l, self.d_model());
            let mut dv = Matrix::zeros(l, self.d_model());
            for h in 0..self.n_heads {
                let doh = self.head(&dconcat, h);
                let p = &c.probs[h];
                let vh = self.head(&c.v, h);
                let qh = self.head(&c.q, h);
                let kh = self.head(&c.k, h);

                // Oh = P · Vh
                let dp = doh.matmul_nt(&vh);
                let dvh = p.matmul_tn(&doh);
                // P = softmax(S); S = scale · Qh Khᵀ (masked entries have
                // zero probability so their score grads vanish).
                let mut ds = softmax_rows_backward(p, &dp);
                ds.scale(scale);
                let dqh = ds.matmul(&kh);
                let dkh = ds.matmul_tn(&qh);

                self.add_head(&mut dq, &dqh, h);
                self.add_head(&mut dk, &dkh, h);
                self.add_head(&mut dv, &dvh, h);
            }

            // Q = X Wq etc.
            self.wq_grad.axpy(1.0, &c.x.matmul_tn(&dq));
            self.wk_grad.axpy(1.0, &c.x.matmul_tn(&dk));
            self.wv_grad.axpy(1.0, &c.x.matmul_tn(&dv));
            let mut dxs = dq.matmul_nt(&self.wq);
            dxs.axpy(1.0, &dk.matmul_nt(&self.wk));
            dxs.axpy(1.0, &dv.matmul_nt(&self.wv));

            for (i, &row) in rows.iter().enumerate() {
                dx.copy_row_from(row, &dxs, i);
            }
        }
        dx
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wq, &mut self.wq_grad);
        f(&mut self.wk, &mut self.wk_grad);
        f(&mut self.wv, &mut self.wv_grad);
        f(&mut self.wo, &mut self.wo_grad);
    }

    pub fn zero_grad(&mut self) {
        self.wq_grad.fill_zero();
        self.wk_grad.fill_zero();
        self.wv_grad.fill_zero();
        self.wo_grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::gradcheck::numerical_grad;

    fn forward_fn(attn_template: &CausalAttention, x: &Matrix) -> Matrix {
        // Rebuild a throwaway layer sharing the same weights for numeric
        // probing (forward mutates the cache, so we clone).
        let mut a = CausalAttention::new(
            attn_template.d_model(),
            attn_template.n_heads,
            attn_template.seq_len,
            0,
        );
        a.wq = attn_template.wq.clone();
        a.wk = attn_template.wk.clone();
        a.wv = attn_template.wv.clone();
        a.wo = attn_template.wo.clone();
        a.forward(x)
    }

    #[test]
    fn causality_holds() {
        // Changing a later token must not affect earlier outputs.
        let mut attn = CausalAttention::new(8, 2, 4, 7);
        let x1 = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.1).sin());
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2[(3, c)] += 1.0; // perturb the last position
        }
        let y1 = attn.forward(&x1);
        let y2 = attn.forward(&x2);
        for i in 0..3 {
            assert_eq!(y1.row(i), y2.row(i), "position {i} must ignore the future");
        }
        assert_ne!(y1.row(3), y2.row(3));
    }

    #[test]
    fn sequences_in_a_batch_are_independent() {
        let mut attn = CausalAttention::new(8, 2, 4, 7);
        let x = Matrix::from_fn(8, 8, |r, c| ((r + c) as f32 * 0.2).cos());
        let y_batch = attn.forward(&x);
        let first: Vec<usize> = (0..4).collect();
        let y_single = attn.forward(&x.gather_rows(&first));
        for i in 0..4 {
            assert_eq!(y_batch.row(i), y_single.row(i));
        }
    }

    #[test]
    fn backward_input_grad_matches_numeric() {
        let mut attn = CausalAttention::new(8, 2, 4, 11);
        let x = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        let dy = Matrix::from_fn(8, 8, |r, c| ((r + 2 * c) as f32 * 0.13).cos());

        let _ = attn.forward(&x);
        let dx = attn.backward(&dy);

        let probe = CausalAttention::new(8, 2, 4, 11);
        let ndx = numerical_grad(&x, &dy, |xp| forward_fn(&probe, xp));
        assert!(dx.max_abs_diff(&ndx) < 2e-2, "diff {}", dx.max_abs_diff(&ndx));
    }

    #[test]
    fn backward_weight_grads_match_numeric() {
        let mut attn = CausalAttention::new(8, 2, 4, 13);
        let x = Matrix::from_fn(4, 8, |r, c| ((r * 5 + c) as f32 * 0.19).sin());
        let dy = Matrix::from_fn(4, 8, |r, c| ((r * 2 + c) as f32 * 0.11).cos());

        let _ = attn.forward(&x);
        let _ = attn.backward(&dy);

        for (name, grad, probe_w) in [
            ("wq", attn.wq_grad.clone(), 0usize),
            ("wk", attn.wk_grad.clone(), 1),
            ("wv", attn.wv_grad.clone(), 2),
            ("wo", attn.wo_grad.clone(), 3),
        ] {
            let base = [&attn.wq, &attn.wk, &attn.wv, &attn.wo][probe_w].clone();
            let ngrad = numerical_grad(&base, &dy, |wp| {
                let mut a = CausalAttention::new(8, 2, 4, 0);
                a.wq = attn.wq.clone();
                a.wk = attn.wk.clone();
                a.wv = attn.wv.clone();
                a.wo = attn.wo.clone();
                match probe_w {
                    0 => a.wq = wp.clone(),
                    1 => a.wk = wp.clone(),
                    2 => a.wv = wp.clone(),
                    _ => a.wo = wp.clone(),
                }
                a.forward(&x)
            });
            assert!(
                grad.max_abs_diff(&ngrad) < 2e-2,
                "{name} grad diff {}",
                grad.max_abs_diff(&ngrad)
            );
        }
    }

    #[test]
    fn attention_rows_mix_only_the_past() {
        // With V = identity-ish embedding, output at position 0 equals
        // V's row 0 transformed — i.e. softmax over a single element.
        let mut attn = CausalAttention::new(4, 1, 3, 3);
        let x = Matrix::from_fn(3, 4, |r, c| if r == c { 1.0 } else { 0.1 });
        let _ = attn.forward(&x);
        // Probability matrix of the only head: row 0 must be [1, 0, 0].
        let p = &attn.cache[0].probs[0];
        assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(p[(0, 1)].abs() < 1e-6 && p[(0, 2)].abs() < 1e-6);
    }
}
