//! End-to-end check of the f16-storage expert path: training with
//! `f16_experts: true` must track the f32 run closely (the only difference
//! is binary16 rounding of expert weights at each forward), and flipping
//! the flag must not perturb the f32 path at all — the f32 run stays the
//! bit-exactness reference.

use symi_model::{ModelConfig, Trainer, UniformPolicy};
use symi_workload::{CorpusConfig, DriftingCorpus};

const STEPS: usize = 40;
// Documented tolerance for the f16 expert path (see DESIGN.md). Only
// routed-expert weight *storage* is rounded to binary16 (accumulation
// stays f32), so single-step perturbations are ~1e-3 — but the runs
// diverge chaotically over time (Adam state and discrete top-1 routing
// amplify the rounding), reaching ~5e-2 per-step by step 60 on the tiny
// config. Gates: per-step |Δloss| ≤ 0.1, run-mean |Δ| ≤ 0.02.

fn run(f16: bool) -> Vec<f32> {
    let cfg = ModelConfig { f16_experts: f16, ..ModelConfig::tiny() };
    let mut trainer = Trainer::new(
        cfg,
        Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
    );
    let mut corpus = DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 4,
        seed: 11,
        ..CorpusConfig::default()
    });
    trainer.train(&mut corpus, STEPS);
    trainer.record.losses.clone()
}

#[test]
fn f16_expert_training_tracks_f32_within_tolerance() {
    let f32_losses = run(false);
    let f16_losses = run(true);
    assert_eq!(f32_losses.len(), STEPS);
    assert_eq!(f16_losses.len(), STEPS);

    let mut worst = 0.0f32;
    for (step, (a, b)) in f32_losses.iter().zip(&f16_losses).enumerate() {
        let d = (a - b).abs();
        assert!(d <= 0.1, "step {step}: f32 loss {a:.6} vs f16 loss {b:.6} (|Δ| {d:.2e} > 1e-1)");
        worst = worst.max(d);
    }
    let mean_delta =
        f32_losses.iter().zip(&f16_losses).map(|(a, b)| (a - b).abs()).sum::<f32>() / STEPS as f32;
    assert!(mean_delta <= 0.02, "run-mean |Δloss| {mean_delta:.2e} > 2e-2");
    // Both runs must actually learn — the f16 path is a compute change,
    // not a regularizer.
    let head = |l: &[f32]| l[..5].iter().sum::<f32>() / 5.0;
    let tail = |l: &[f32]| l[STEPS - 5..].iter().sum::<f32>() / 5.0;
    assert!(tail(&f16_losses) < head(&f16_losses) - 0.1, "f16 run failed to learn");
    assert!(tail(&f32_losses) < head(&f32_losses) - 0.1, "f32 run failed to learn");
    eprintln!("worst per-step |Δloss| over {STEPS} steps: {worst:.2e}");
}

#[test]
fn f16_flag_off_leaves_f32_path_bit_exact() {
    // Two independent f32 runs are bitwise identical — constructing the
    // trainer with the flag present (but off) must not change anything.
    let a = run(false);
    let b = run(false);
    assert_eq!(a, b, "f32 training must be bit-exactly reproducible");
}
