//! Property-based tests for the MoE model layer: routing/capacity/drop
//! invariants must hold for arbitrary inputs, replica allocations, and k.

use proptest::prelude::*;
use symi_model::moe::MoeLayer;
use symi_tensor::Matrix;

fn input(t: usize, d: usize, seed: f32) -> Matrix {
    Matrix::from_fn(t, d, move |r, c| ((r * d + c) as f32 * 0.173 + seed).sin())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn token_accounting_is_exact(
        t in 1usize..40,
        cap in 0usize..10,
        k in 1usize..3,
        seed in 0u32..50,
    ) {
        let e = 4usize;
        let mut layer = MoeLayer::new(6, 8, e, k, cap as f32, 0.0, seed as u64);
        let x = input(t, 6, seed as f32);
        let (_, stats) = layer.forward(&x, &[1, 1, 1, 1]);
        prop_assert_eq!(stats.survived + stats.dropped, t);
        prop_assert_eq!(stats.popularity.iter().sum::<u64>() as usize, t * k);
        prop_assert_eq!(
            stats.assignments_kept + stats.assignments_dropped,
            t * k
        );
        // No class keeps more than its capacity.
        prop_assert!(stats.assignments_kept <= e * cap * 1);
    }

    #[test]
    fn outputs_are_finite_for_any_replica_allocation(
        replicas in prop::collection::vec(1usize..6, 4),
        t in 1usize..24,
    ) {
        let mut layer = MoeLayer::new(6, 8, 4, 1, 2.0, 0.01, 3);
        let x = input(t, 6, 0.5);
        let (y, _) = layer.forward(&x, &replicas);
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dy = input(t, 6, 1.5);
        let dx = layer.backward(&dy);
        prop_assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn survival_is_monotone_in_capacity(t in 4usize..32, seed in 0u32..20) {
        let x = input(t, 6, seed as f32 * 0.1);
        let mut prev = 0usize;
        for cap in [0usize, 1, 2, 4, 100] {
            let mut layer = MoeLayer::new(6, 8, 4, 1, cap as f32, 0.0, seed as u64);
            let (_, stats) = layer.forward(&x, &[1, 1, 1, 1]);
            prop_assert!(stats.survived >= prev, "cap {cap}");
            prev = stats.survived;
        }
        prop_assert_eq!(prev, t, "unbounded capacity keeps everything");
    }

    #[test]
    fn more_replicas_never_hurt_survival(t in 8usize..32, seed in 0u32..20) {
        let x = input(t, 6, seed as f32 * 0.07);
        let mut layer = MoeLayer::new(6, 8, 4, 1, 1.0, 0.0, seed as u64);
        let (_, low) = layer.forward(&x, &[1, 1, 1, 1]);
        let (_, high) = layer.forward(&x, &[3, 3, 3, 3]);
        prop_assert!(high.survived >= low.survived);
    }

    #[test]
    fn gates_are_probabilities(t in 1usize..20, k in 1usize..4) {
        let mut layer = MoeLayer::new(6, 8, 4, k, 100.0, 0.0, 9);
        let x = input(t, 6, 2.0);
        let routing = layer.router.forward(&x);
        for picks in &routing.assignment {
            prop_assert_eq!(picks.len(), k);
            let mut seen = std::collections::HashSet::new();
            for &(class, gate) in picks {
                prop_assert!(gate > 0.0 && gate <= 1.0);
                prop_assert!(seen.insert(class), "classes must be distinct");
            }
            let total: f32 = picks.iter().map(|&(_, g)| g).sum();
            prop_assert!(total <= 1.0 + 1e-5, "top-k gates cannot exceed the simplex");
        }
    }
}
