//! Randomized property tests for the MoE model layer: routing/capacity/drop
//! invariants must hold for arbitrary inputs, replica allocations, and k.
//! Driven by `symi_tensor::rng` with fixed seeds.

use symi_model::moe::MoeLayer;
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::Matrix;

fn input(t: usize, d: usize, seed: f32) -> Matrix {
    Matrix::from_fn(t, d, move |r, c| ((r * d + c) as f32 * 0.173 + seed).sin())
}

#[test]
fn token_accounting_is_exact() {
    let mut rng = StdRng::seed_from_u64(401);
    for _ in 0..32 {
        let t = rng.gen_range(1..40usize);
        let cap = rng.gen_range(0..10usize);
        let k = rng.gen_range(1..3usize);
        let seed = rng.gen_range(0..50u32);
        let e = 4usize;
        let mut layer = MoeLayer::new(6, 8, e, k, cap as f32, 0.0, seed as u64);
        let x = input(t, 6, seed as f32);
        let (_, stats) = layer.forward(&x, &[1, 1, 1, 1]);
        assert_eq!(stats.survived + stats.dropped, t);
        assert_eq!(stats.popularity.iter().sum::<u64>() as usize, t * k);
        assert_eq!(stats.assignments_kept + stats.assignments_dropped, t * k);
        // No class keeps more than its capacity.
        assert!(stats.assignments_kept <= e * cap);
    }
}

#[test]
fn outputs_are_finite_for_any_replica_allocation() {
    let mut rng = StdRng::seed_from_u64(402);
    for _ in 0..32 {
        let replicas: Vec<usize> = (0..4).map(|_| rng.gen_range(1..6usize)).collect();
        let t = rng.gen_range(1..24usize);
        let mut layer = MoeLayer::new(6, 8, 4, 1, 2.0, 0.01, 3);
        let x = input(t, 6, 0.5);
        let (y, _) = layer.forward(&x, &replicas);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dy = input(t, 6, 1.5);
        let dx = layer.backward(&dy);
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn survival_is_monotone_in_capacity() {
    let mut rng = StdRng::seed_from_u64(403);
    for _ in 0..16 {
        let t = rng.gen_range(4..32usize);
        let seed = rng.gen_range(0..20u32);
        let x = input(t, 6, seed as f32 * 0.1);
        let mut prev = 0usize;
        for cap in [0usize, 1, 2, 4, 100] {
            let mut layer = MoeLayer::new(6, 8, 4, 1, cap as f32, 0.0, seed as u64);
            let (_, stats) = layer.forward(&x, &[1, 1, 1, 1]);
            assert!(stats.survived >= prev, "cap {cap}");
            prev = stats.survived;
        }
        assert_eq!(prev, t, "unbounded capacity keeps everything");
    }
}

#[test]
fn more_replicas_never_hurt_survival() {
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..16 {
        let t = rng.gen_range(8..32usize);
        let seed = rng.gen_range(0..20u32);
        let x = input(t, 6, seed as f32 * 0.07);
        let mut layer = MoeLayer::new(6, 8, 4, 1, 1.0, 0.0, seed as u64);
        let (_, low) = layer.forward(&x, &[1, 1, 1, 1]);
        let (_, high) = layer.forward(&x, &[3, 3, 3, 3]);
        assert!(high.survived >= low.survived);
    }
}

#[test]
fn gates_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(405);
    for _ in 0..16 {
        let t = rng.gen_range(1..20usize);
        let k = rng.gen_range(1..4usize);
        let mut layer = MoeLayer::new(6, 8, 4, k, 100.0, 0.0, 9);
        let x = input(t, 6, 2.0);
        let routing = layer.router.forward(&x);
        for picks in &routing.assignment {
            assert_eq!(picks.len(), k);
            let mut seen = std::collections::HashSet::new();
            for &(class, gate) in picks {
                assert!(gate > 0.0 && gate <= 1.0);
                assert!(seen.insert(class), "classes must be distinct");
            }
            let total: f32 = picks.iter().map(|&(_, g)| g).sum();
            assert!(total <= 1.0 + 1e-5, "top-k gates cannot exceed the simplex");
        }
    }
}
