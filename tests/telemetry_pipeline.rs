//! End-to-end telemetry: run SYMI and both baselines with telemetry
//! attached, emit `IterationReport` JSONL, and reconstruct the paper's
//! observability artifacts (fig-12-style phase shares, per-class drop
//! rates, placement churn) from the files alone.

use std::sync::Arc;

use symi::{EngineConfig, MoeLayerEngine};
use symi_baselines::{DeepSpeedMoeEngine, FlexMoePolicy};
use symi_collectives::{Cluster, ClusterSpec, RankCtx};
use symi_model::{ModelConfig, Trainer};
use symi_telemetry::{ClusterTelemetry, IterationReport, JsonlSink, Phase, LINK_CLASSES};
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const E: usize = 4;
const ITERS: u64 = 3;

fn tokens(rank: usize, t_loc: usize) -> Matrix {
    Matrix::from_fn(t_loc, D, |r, c| {
        ((c as f32 * 0.7).sin()) + 0.05 * (((rank * t_loc + r) * D + c) as f32 * 0.613).sin()
    })
}

/// The driver pattern for distributed engines: after each iteration rank 0
/// merges engine stats + drained phase timings + drained phase bytes into
/// one cluster-wide report.
#[allow(clippy::too_many_arguments)]
fn emit_report(
    ctx: &RankCtx,
    telemetry: &Arc<ClusterTelemetry>,
    system: &str,
    iteration: u64,
    loss: f32,
    popularity: Vec<u64>,
    kept_per_class: Vec<u64>,
    replicas: Vec<u64>,
    placement_churn: u64,
) {
    ctx.barrier();
    if ctx.rank() == 0 {
        let mut r = IterationReport::new(system, iteration);
        r.loss = loss as f64;
        r.popularity = popularity;
        r.kept_per_class = kept_per_class;
        r.replicas = replicas;
        r.placement_churn = placement_churn;
        r.phase_ns = telemetry.drain_phase_ns();
        r.phase_bytes = ctx.traffic().drain_phase_bytes();
        telemetry.emit(&r);
    }
    ctx.barrier();
}

fn run_symi(path: &std::path::Path) {
    let telemetry = ClusterTelemetry::new(NODES);
    telemetry.add_sink(Arc::new(JsonlSink::create(path).unwrap()));
    Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let cfg = EngineConfig {
            d_model: D,
            d_ff: 16,
            expert_classes: E,
            slots_per_rank: 2,
            slot_capacity: 8,
            adam: AdamConfig::default(),
            seed: 77,
            layer_id: 0,
        };
        let mut e = MoeLayerEngine::new(ctx.rank(), NODES, cfg);
        e.attach_telemetry(telemetry.handle(ctx.rank()));
        let x = tokens(ctx.rank(), 16);
        let target = Matrix::zeros(16, D);
        for it in 0..ITERS {
            let s = e.iteration(ctx, &x, &target).unwrap();
            emit_report(
                ctx,
                &telemetry,
                "symi",
                it,
                s.loss,
                s.popularity,
                s.kept_per_class,
                s.replicas.iter().map(|&r| r as u64).collect(),
                s.placement_churn as u64,
            );
        }
    });
    telemetry.flush();
}

fn run_deepspeed(path: &std::path::Path) {
    let telemetry = ClusterTelemetry::new(NODES);
    telemetry.add_sink(Arc::new(JsonlSink::create(path).unwrap()));
    Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut e =
            DeepSpeedMoeEngine::new(ctx.rank(), NODES, D, 16, E, 2, 8, AdamConfig::default(), 77);
        e.attach_telemetry(telemetry.handle(ctx.rank()));
        let x = tokens(ctx.rank(), 16);
        let target = Matrix::zeros(16, D);
        for it in 0..ITERS {
            let s = e.iteration(ctx, &x, &target).unwrap();
            let uniform = vec![(NODES * 2 / E) as u64; E];
            emit_report(
                ctx,
                &telemetry,
                "deepspeed",
                it,
                s.loss,
                s.popularity,
                s.kept_per_class,
                uniform,
                0, // static placement never churns
            );
        }
    });
    telemetry.flush();
}

fn run_flexmoe(path: &std::path::Path) {
    // The FlexMoE baseline trains through the functional model; its trainer
    // emits complete reports itself.
    let cfg = ModelConfig::tiny();
    let telemetry = ClusterTelemetry::new(1);
    telemetry.add_sink(Arc::new(JsonlSink::create(path).unwrap()));
    let mut trainer = Trainer::new(cfg, Box::new(FlexMoePolicy::new(cfg.total_slots, 2)));
    trainer.attach_telemetry(telemetry.clone());
    let mut corpus = symi_workload::DriftingCorpus::new(symi_workload::CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 4,
        coherence: 0.8,
        topic_zipf: 1.1,
        drift_sigma: 0.2,
        jolt_prob: 0.0,
        seed: 11,
    });
    trainer.train(&mut corpus, ITERS as usize);
    telemetry.flush();
}

fn read(path: &std::path::Path) -> Vec<IterationReport> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|l| IterationReport::parse_jsonl(l).unwrap())
        .collect()
}

#[test]
fn telemetry_reconstructs_paper_artifacts_for_all_systems() {
    let dir = std::env::temp_dir().join(format!("symi_tele_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let symi_path = dir.join("symi.jsonl");
    let ds_path = dir.join("deepspeed.jsonl");
    let flex_path = dir.join("flexmoe.jsonl");
    run_symi(&symi_path);
    run_deepspeed(&ds_path);
    run_flexmoe(&flex_path);

    for (system, path) in [("symi", &symi_path), ("deepspeed", &ds_path), ("flexmoe", &flex_path)] {
        let reports = read(path);
        assert_eq!(reports.len(), ITERS as usize, "{system}: one report per iteration");
        for r in &reports {
            // Fig-12-style phase shares: well-formed distribution.
            let shares = r.phase_shares();
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{system}: shares sum to 1, got {sum}");
            assert!(r.phase_ns_max(Phase::ExpertFfn) > 0, "{system}: expert compute must be timed");
            // Per-class drop rates: defined and within [0, 1].
            let drops = r.drop_rate_per_class();
            assert_eq!(drops.len(), r.popularity.len());
            assert!(drops.iter().all(|d| (0.0..=1.0).contains(d)), "{system}: {drops:?}");
            assert!(r.popularity.iter().sum::<u64>() > 0, "{system}: popularity routed");
            assert!(r.popularity_entropy().is_finite());
            assert!(r.straggler_spread_ns() <= r.iteration_ns());
        }
        let churn: u64 = reports.iter().map(|r| r.placement_churn).sum();
        match system {
            "deepspeed" => assert_eq!(churn, 0, "static placement must not churn"),
            _ => { /* adaptive systems may or may not move under this workload */ }
        }
    }

    // Distributed runs must attribute real bytes to phases per link class.
    let symi = read(&symi_path);
    let dispatch: u64 = symi.iter().map(|r| r.bytes_for_phase(Phase::Dispatch)).sum();
    assert!(dispatch > 0, "token dispatch must move bytes");
    let grad: u64 = symi.iter().map(|r| r.bytes_for_phase(Phase::GradComm)).sum();
    assert!(grad > 0, "gradient communication must move bytes");
    let weight: u64 = symi.iter().map(|r| r.bytes_for_phase(Phase::WeightComm)).sum();
    assert!(weight > 0, "weight distribution must move bytes");
    let total: u64 =
        LINK_CLASSES.iter().map(|&c| symi.iter().map(|r| r.bytes_for_class(c)).sum::<u64>()).sum();
    assert!(total >= dispatch + grad + weight);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deepspeed_pays_optimizer_bytes_symi_decouples() {
    // §3: the coupled baseline stages full optimizer state over host-device
    // per step; SYMI's decoupled optimizer pays gradient/weight network legs
    // instead. Telemetry must expose that contrast per phase.
    let dir = std::env::temp_dir().join(format!("symi_tele_contrast_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let symi_path = dir.join("symi.jsonl");
    let ds_path = dir.join("deepspeed.jsonl");
    run_symi(&symi_path);
    run_deepspeed(&ds_path);
    let ds = read(&ds_path);
    let ds_opt_bytes: u64 = ds.iter().map(|r| r.bytes_for_phase(Phase::OptimizerStep)).sum();
    assert!(ds_opt_bytes > 0, "ZeRO-1 staging must be attributed to the optimizer phase");
    let _ = std::fs::remove_dir_all(&dir);
}
