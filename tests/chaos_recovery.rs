//! Chaos harness: multi-iteration SYMI training under injected faults.
//!
//! The contract under test is the ISSUE's acceptance bar: for every fault
//! the plan can express, a run must end in exactly one of two states —
//!
//! 1. **bit-exact recovery**: the run completes and every per-iteration
//!    loss equals the no-fault oracle's bit for bit (delays absorbed by
//!    the stash, duplicates absorbed by the sequence filter), or
//! 2. **loud, fully diagnosed failure/degradation**: a decoded
//!    `ProtocolFailure` naming the starved phase, a rank death surfaced
//!    through `run_with_faults`, or a degraded iteration counted by the
//!    engine while training continues on the stale placement.
//!
//! Silent divergence (completing with different losses and no degraded
//! flag) and hangs are the two forbidden outcomes; every scenario below
//! asserts their absence.

use std::time::Duration;

use symi::{EngineConfig, MoeLayerEngine};
use symi_collectives::{
    Cluster, ClusterSpec, FaultPlan, FaultStats, MsgMatch, ProtocolStats, RetryPolicy, WirePhase,
};
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const T_LOC: usize = 8;
const ITERS: usize = 6;

fn cfg() -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 31,
        layer_id: 0,
    }
}

/// Mildly skewed token embeddings so the placement actually rebalances.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T_LOC, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T_LOC + r) * D + c) as f32 * 0.613).sin()
    })
}

/// What one rank observed over a full training run.
#[derive(Clone, Debug)]
struct RunOutcome {
    losses: Vec<f32>,
    degraded: u64,
    proto: ProtocolStats,
    faults: FaultStats,
}

/// The per-rank training loop every scenario drives.
fn train(
    ctx: &mut symi_collectives::RankCtx,
    timeout: Duration,
    retries: u32,
) -> Result<RunOutcome, String> {
    ctx.set_recv_timeout(Some(timeout));
    ctx.set_retry_policy(Some(RetryPolicy::new(retries, 2.0)));
    let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
    let x = tokens(ctx.rank());
    let target = Matrix::zeros(T_LOC, D);
    let mut losses = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        losses.push(engine.iteration(ctx, &x, &target).map_err(|e| e.to_string())?.loss);
    }
    Ok(RunOutcome {
        losses,
        degraded: engine.degraded_iterations(),
        proto: ctx.protocol_stats(),
        faults: ctx.fault_stats(),
    })
}

/// Runs the training loop under `plan`; outer `Err` is a rank panic
/// (kill fault), inner `Err` is a communication error string.
fn run_chaos(
    plan: FaultPlan,
    timeout: Duration,
    retries: u32,
) -> Vec<Result<Result<RunOutcome, String>, String>> {
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, |ctx| {
        train(ctx, timeout, retries)
    });
    results
}

/// The no-fault oracle: plain runtime, no fault machinery, no timeouts.
fn oracle_losses() -> Vec<f32> {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        (0..ITERS).map(|_| engine.iteration(ctx, &x, &target).unwrap().loss).collect::<Vec<f32>>()
    });
    results.into_iter().next().expect("rank 0 result")
}

fn unwrap_ok(results: Vec<Result<Result<RunOutcome, String>, String>>) -> Vec<RunOutcome> {
    results
        .into_iter()
        .enumerate()
        .map(|(rank, r)| {
            r.unwrap_or_else(|p| panic!("rank {rank} panicked: {p}"))
                .unwrap_or_else(|e| panic!("rank {rank} errored: {e}"))
        })
        .collect()
}

#[test]
fn healthy_run_is_bit_exact_with_zero_protocol_noise() {
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(FaultPlan::new(0), Duration::from_millis(200), 2));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: fault plumbing must not change the math");
        assert_eq!(o.degraded, 0, "rank {rank}");
        assert_eq!(o.proto.retries, 0, "rank {rank}: healthy runs never retry");
        assert_eq!(o.proto.fenced_messages, 0, "rank {rank}: healthy runs never fence");
        assert_eq!(o.proto.duplicates_dropped, 0, "rank {rank}");
        assert_eq!(o.faults, FaultStats::default(), "rank {rank}: empty plan injects nothing");
    }
}

#[test]
fn delayed_dispatch_messages_recover_bit_exact() {
    // Hold rank 0's dispatch traffic to rank 1 back behind two later sends:
    // the rows/meta all-to-all issues every send before blocking, so the
    // held message ages out within the phase and arrives out of order. The
    // receiver's stash must hide the reordering completely.
    let plan = FaultPlan::new(7)
        .delay(MsgMatch::any().from(0).to(1).phase(WirePhase::DispatchRows).iteration(2), 2)
        .delay(MsgMatch::any().from(0).to(1).phase(WirePhase::DispatchMeta).iteration(3), 1);
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: delays must recover bit-exact");
        assert_eq!(o.degraded, 0, "rank {rank}: a reorder is not a degradation");
    }
    assert_eq!(outcomes[0].faults.delayed, 2, "both delay rules fired at the sender");
}

#[test]
fn duplicated_messages_are_absorbed_bit_exact() {
    // Deliver *every* message twice, run-wide. The per-sender sequence
    // filter must drop each echo before it reaches tag matching.
    let plan = FaultPlan::new(11).duplicate(MsgMatch::any());
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
    let mut dups_absorbed = 0;
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: duplicates must recover bit-exact");
        assert_eq!(o.degraded, 0, "rank {rank}");
        assert!(o.faults.duplicated > 0, "rank {rank} sent traffic, so it duplicated some");
        dups_absorbed += o.proto.duplicates_dropped;
    }
    assert!(dups_absorbed > 0, "the sequence filter must have absorbed echoes");
}

#[test]
fn dropped_grad_messages_fail_loud_with_decoded_phase() {
    // Iteration 2's entire gradient-collection transfer set is silently
    // lost. There is no retransmission below the mailbox, so the receives
    // must starve and escalate to decoded ProtocolFailures; every other
    // rank then starves transitively (ring loss-sync, weight transfers)
    // and errors too — as a Protocol escalation or, if its peers already
    // errored out and hung up, a peer-gone. Silence and hangs are the
    // bugs this scenario exists to catch.
    let plan =
        FaultPlan::new(3).drop_msgs(MsgMatch::any().phase(WirePhase::GradCollect).iteration(2));
    let results = run_chaos(plan, Duration::from_millis(60), 1);
    let mut decoded_grad_collect = 0;
    for (rank, r) in results.into_iter().enumerate() {
        let err = r
            .expect("drops starve ranks; they must not panic")
            .expect_err(&format!("rank {rank} must fail loudly, not diverge silently"));
        if err.contains("protocol failure") && err.contains("GradCollect") {
            decoded_grad_collect += 1;
        }
    }
    assert!(
        decoded_grad_collect > 0,
        "at least one rank must name the starved GradCollect transfer"
    );
}

#[test]
fn popularity_blackout_degrades_to_stale_placement_and_continues() {
    // Iteration 2's entire popularity sync — gather legs and the broadcast
    // (same phase bits under the subop) — vanishes. Every rank must starve
    // symmetrically, fall back to the previous iteration's placement, count
    // one degraded iteration, and keep training to the end.
    let plan =
        FaultPlan::new(5).drop_msgs(MsgMatch::any().phase(WirePhase::PopularitySync).iteration(2));
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(60), 1));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses.len(), ITERS, "rank {rank}: training must run to completion");
        assert!(o.losses.iter().all(|l| l.is_finite()), "rank {rank}: losses stay finite");
        assert_eq!(o.degraded, 1, "rank {rank}: exactly the blacked-out iteration degrades");
        assert!(o.proto.recv_timeouts > 0, "rank {rank}: degradation is triggered by starvation");
    }
}

#[test]
fn killed_rank_is_reported_and_survivors_fail_loud() {
    // Rank 2 dies at its first dispatch event of iteration 1. The death is
    // a panic the harness converts to an error; survivors starve on the
    // dead rank and must error out rather than hang.
    let plan =
        FaultPlan::new(9).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(1));
    let results = run_chaos(plan, Duration::from_millis(60), 1);
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Err(panic) if rank == 2 => {
                assert!(
                    panic.contains("fault injection"),
                    "rank 2's death is self-described: {panic}"
                );
            }
            Err(panic) => panic!("only the killed rank may panic, rank {rank} did: {panic}"),
            Ok(inner) => {
                let err = inner.expect_err(&format!(
                    "rank {rank} depends on the dead rank and must fail loudly"
                ));
                assert!(!err.is_empty(), "rank {rank}: error must carry a diagnosis");
            }
        }
    }
}

#[test]
fn seeded_fault_matrix_recovers_bit_exact() {
    // CI smoke: a small matrix of recoverable chaos (probabilistic
    // duplicates everywhere, probabilistic dispatch reordering) across
    // seeds. Every cell must reach bit-exact parity with the oracle — a
    // failing seed replays deterministically by construction.
    let oracle = oracle_losses();
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::new(seed)
            .duplicate(MsgMatch::any().probability(0.5))
            .delay(MsgMatch::any().phase(WirePhase::DispatchRows).probability(0.25), 1)
            .delay(MsgMatch::any().phase(WirePhase::DispatchMeta).probability(0.25), 1);
        let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(o.losses, oracle, "seed {seed}, rank {rank}: recoverable chaos diverged");
            assert_eq!(o.degraded, 0, "seed {seed}, rank {rank}");
        }
        let injected: u64 = outcomes.iter().map(|o| o.faults.message_faults()).sum();
        assert!(injected > 0, "seed {seed}: the plan must actually have injected faults");
    }
}
