//! Chaos harness: multi-iteration SYMI training under injected faults.
//!
//! The contract under test is the ISSUE's acceptance bar: for every fault
//! the plan can express, a run must end in exactly one of two states —
//!
//! 1. **bit-exact recovery**: the run completes and every per-iteration
//!    loss equals the no-fault oracle's bit for bit (delays absorbed by
//!    the stash, duplicates absorbed by the sequence filter), or
//! 2. **loud, fully diagnosed failure/degradation**: a decoded
//!    `ProtocolFailure` naming the starved phase, a rank death surfaced
//!    through `run_with_faults`, or a degraded iteration counted by the
//!    engine while training continues on the stale placement.
//!
//! Silent divergence (completing with different losses and no degraded
//! flag) and hangs are the two forbidden outcomes; every scenario below
//! asserts their absence.
//!
//! A third sanctioned outcome exists when the driver opts into **elastic
//! recovery** (`MoeLayerEngine::recover`): a permanently killed rank no
//! longer ends the run — survivors agree on a shrunk membership, re-shard
//! the optimizer, re-place the experts over `N−1` ranks, and finish
//! training at degraded capacity. The `elastic_*` scenarios pin that path,
//! up to bit-exactness against a fresh `N−1`-rank cluster seeded from the
//! recovered state.

use std::sync::Arc;
use std::time::Duration;

use symi::{EngineConfig, EngineSnapshot, MoeLayerEngine, RecoveryStats};
use symi_collectives::{
    Cluster, ClusterSpec, FaultPlan, FaultStats, MsgMatch, ProtocolStats, RetryPolicy, WirePhase,
};
use symi_telemetry::ClusterTelemetry;
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const T_LOC: usize = 8;
const ITERS: usize = 6;

fn cfg() -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 31,
        layer_id: 0,
    }
}

/// Mildly skewed token embeddings so the placement actually rebalances.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T_LOC, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T_LOC + r) * D + c) as f32 * 0.613).sin()
    })
}

/// What one rank observed over a full training run.
#[derive(Clone, Debug)]
struct RunOutcome {
    losses: Vec<f32>,
    degraded: u64,
    proto: ProtocolStats,
    faults: FaultStats,
}

/// The per-rank training loop every scenario drives.
fn train(
    ctx: &mut symi_collectives::RankCtx,
    timeout: Duration,
    retries: u32,
) -> Result<RunOutcome, String> {
    ctx.set_recv_timeout(Some(timeout));
    ctx.set_retry_policy(Some(RetryPolicy::new(retries, 2.0)));
    let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
    let x = tokens(ctx.rank());
    let target = Matrix::zeros(T_LOC, D);
    let mut losses = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        losses.push(engine.iteration(ctx, &x, &target).map_err(|e| e.to_string())?.loss);
    }
    Ok(RunOutcome {
        losses,
        degraded: engine.degraded_iterations(),
        proto: ctx.protocol_stats(),
        faults: ctx.fault_stats(),
    })
}

/// Runs the training loop under `plan`; outer `Err` is a rank panic
/// (kill fault), inner `Err` is a communication error string.
fn run_chaos(
    plan: FaultPlan,
    timeout: Duration,
    retries: u32,
) -> Vec<Result<Result<RunOutcome, String>, String>> {
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, |ctx| {
        train(ctx, timeout, retries)
    });
    results
}

/// The no-fault oracle: plain runtime, no fault machinery, no timeouts.
fn oracle_losses() -> Vec<f32> {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        (0..ITERS).map(|_| engine.iteration(ctx, &x, &target).unwrap().loss).collect::<Vec<f32>>()
    });
    results.into_iter().next().expect("rank 0 result")
}

/// What a rank observed over an elastic (recovery-enabled) training run.
#[derive(Clone, Debug)]
struct ElasticOutcome {
    losses: Vec<f32>,
    /// The engine iteration each loss came from (iterations skipped by a
    /// recovery leave gaps).
    loss_iters: Vec<u64>,
    /// Whether each loss's iteration degraded (a degraded loss may be
    /// rank-local — advisory, never compared bit-exact).
    loss_degraded: Vec<bool>,
    /// Final world size after all recoveries.
    world: usize,
    recoveries: Vec<RecoveryStats>,
}

/// The recovery-enabled per-rank loop: identical to [`train`] except that
/// a recoverable failure triggers `MoeLayerEngine::recover` instead of
/// ending the run. The iteration budget counts engine iterations, so the
/// aborted (skipped) iteration never yields a loss.
fn train_elastic(
    ctx: &mut symi_collectives::RankCtx,
    timeout: Duration,
    retries: u32,
    telemetry: Option<&Arc<ClusterTelemetry>>,
) -> Result<ElasticOutcome, String> {
    ctx.set_recv_timeout(Some(timeout));
    ctx.set_retry_policy(Some(RetryPolicy::new(retries, 2.0)));
    let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
    if let Some(t) = telemetry {
        engine.attach_telemetry(t.handle(ctx.rank()));
    }
    let x = tokens(ctx.rank());
    let target = Matrix::zeros(T_LOC, D);
    let mut losses = Vec::new();
    let mut loss_iters = Vec::new();
    let mut loss_degraded = Vec::new();
    let mut recoveries: Vec<RecoveryStats> = Vec::new();
    while engine.iteration_count() < ITERS as u64 {
        let iter = engine.iteration_count();
        match engine.iteration(ctx, &x, &target) {
            Ok(stats) => {
                losses.push(stats.loss);
                loss_iters.push(iter);
                loss_degraded.push(stats.degraded);
            }
            Err(e) if MoeLayerEngine::can_recover(&e) && recoveries.len() < NODES => {
                recoveries.push(engine.recover(ctx, &e).map_err(|e| e.to_string())?);
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(ElasticOutcome {
        losses,
        loss_iters,
        loss_degraded,
        world: engine.membership().size(),
        recoveries,
    })
}

fn run_elastic(
    plan: FaultPlan,
    timeout: Duration,
    retries: u32,
    telemetry: Option<Arc<ClusterTelemetry>>,
) -> Vec<Result<Result<ElasticOutcome, String>, String>> {
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, move |ctx| {
        train_elastic(ctx, timeout, retries, telemetry.as_ref())
    });
    results
}

/// Splits an elastic chaos run into (killed-rank panics, survivor
/// outcomes), asserting only `dead` panicked and that its panic is the
/// self-described injection.
fn split_survivors(
    results: Vec<Result<Result<ElasticOutcome, String>, String>>,
    dead: usize,
) -> Vec<(usize, ElasticOutcome)> {
    let mut survivors = Vec::new();
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Err(panic) if rank == dead => {
                assert!(panic.contains("fault injection"), "rank {rank} panic: {panic}");
            }
            Err(panic) => panic!("only the killed rank may panic, rank {rank} did: {panic}"),
            Ok(inner) => {
                survivors.push((rank, inner.unwrap_or_else(|e| panic!("rank {rank} errored: {e}"))))
            }
        }
    }
    assert_eq!(survivors.len(), NODES - 1, "every survivor must finish");
    survivors
}

fn unwrap_ok(results: Vec<Result<Result<RunOutcome, String>, String>>) -> Vec<RunOutcome> {
    results
        .into_iter()
        .enumerate()
        .map(|(rank, r)| {
            r.unwrap_or_else(|p| panic!("rank {rank} panicked: {p}"))
                .unwrap_or_else(|e| panic!("rank {rank} errored: {e}"))
        })
        .collect()
}

#[test]
fn healthy_run_is_bit_exact_with_zero_protocol_noise() {
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(FaultPlan::new(0), Duration::from_millis(200), 2));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: fault plumbing must not change the math");
        assert_eq!(o.degraded, 0, "rank {rank}");
        assert_eq!(o.proto.retries, 0, "rank {rank}: healthy runs never retry");
        assert_eq!(o.proto.fenced_messages, 0, "rank {rank}: healthy runs never fence");
        assert_eq!(o.proto.duplicates_dropped, 0, "rank {rank}");
        assert_eq!(o.faults, FaultStats::default(), "rank {rank}: empty plan injects nothing");
    }
}

#[test]
fn delayed_dispatch_messages_recover_bit_exact() {
    // Hold rank 0's dispatch traffic to rank 1 back behind two later sends:
    // the rows/meta all-to-all issues every send before blocking, so the
    // held message ages out within the phase and arrives out of order. The
    // receiver's stash must hide the reordering completely.
    let plan = FaultPlan::new(7)
        .delay(MsgMatch::any().from(0).to(1).phase(WirePhase::DispatchRows).iteration(2), 2)
        .delay(MsgMatch::any().from(0).to(1).phase(WirePhase::DispatchMeta).iteration(3), 1);
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: delays must recover bit-exact");
        assert_eq!(o.degraded, 0, "rank {rank}: a reorder is not a degradation");
    }
    assert_eq!(outcomes[0].faults.delayed, 2, "both delay rules fired at the sender");
}

#[test]
fn duplicated_messages_are_absorbed_bit_exact() {
    // Deliver *every* message twice, run-wide. The per-sender sequence
    // filter must drop each echo before it reaches tag matching.
    let plan = FaultPlan::new(11).duplicate(MsgMatch::any());
    let oracle = oracle_losses();
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
    let mut dups_absorbed = 0;
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses, oracle, "rank {rank}: duplicates must recover bit-exact");
        assert_eq!(o.degraded, 0, "rank {rank}");
        assert!(o.faults.duplicated > 0, "rank {rank} sent traffic, so it duplicated some");
        dups_absorbed += o.proto.duplicates_dropped;
    }
    assert!(dups_absorbed > 0, "the sequence filter must have absorbed echoes");
}

#[test]
fn dropped_grad_messages_fail_loud_with_decoded_phase() {
    // Iteration 2's entire gradient-collection transfer set is silently
    // lost. There is no retransmission below the mailbox, so the receives
    // must starve and escalate to decoded ProtocolFailures; every other
    // rank then starves transitively (the advisory ring, weight transfers)
    // and errors too — as a Protocol escalation or, if its peers already
    // errored out and hung up, a peer-gone. Silence and hangs are the
    // bugs this scenario exists to catch.
    let plan =
        FaultPlan::new(3).drop_msgs(MsgMatch::any().phase(WirePhase::GradCollect).iteration(2));
    let results = run_chaos(plan, Duration::from_millis(60), 1);
    let mut decoded_grad_collect = 0;
    for (rank, r) in results.into_iter().enumerate() {
        let err = r
            .expect("drops starve ranks; they must not panic")
            .expect_err(&format!("rank {rank} must fail loudly, not diverge silently"));
        if err.contains("protocol failure") && err.contains("GradCollect") {
            decoded_grad_collect += 1;
        }
    }
    assert!(
        decoded_grad_collect > 0,
        "at least one rank must name the starved GradCollect transfer"
    );
}

#[test]
fn popularity_blackout_degrades_to_stale_placement_and_continues() {
    // Iteration 2's entire popularity sync — gather legs and the broadcast
    // (same phase bits under the subop) — vanishes. Every rank must starve
    // symmetrically, fall back to the previous iteration's placement, count
    // one degraded iteration, and keep training to the end.
    let plan =
        FaultPlan::new(5).drop_msgs(MsgMatch::any().phase(WirePhase::PopularitySync).iteration(2));
    let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(60), 1));
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.losses.len(), ITERS, "rank {rank}: training must run to completion");
        assert!(o.losses.iter().all(|l| l.is_finite()), "rank {rank}: losses stay finite");
        assert_eq!(o.degraded, 1, "rank {rank}: exactly the blacked-out iteration degrades");
        assert!(o.proto.recv_timeouts > 0, "rank {rank}: degradation is triggered by starvation");
    }
}

#[test]
fn kill_without_recovery_opt_in_still_fails_loud() {
    // Rank 2 dies at its first dispatch event of iteration 1. Elastic
    // recovery is a *driver-level* opt-in: the plain training loop must
    // keep today's contract — survivors starve on the dead rank and error
    // out rather than hang (and never silently diverge).
    let plan =
        FaultPlan::new(9).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(1));
    let results = run_chaos(plan, Duration::from_millis(60), 1);
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Err(panic) if rank == 2 => {
                assert!(
                    panic.contains("fault injection"),
                    "rank 2's death is self-described: {panic}"
                );
            }
            Err(panic) => panic!("only the killed rank may panic, rank {rank} did: {panic}"),
            Ok(inner) => {
                let err = inner.expect_err(&format!(
                    "rank {rank} depends on the dead rank and must fail loudly"
                ));
                assert!(!err.is_empty(), "rank {rank}: error must carry a diagnosis");
            }
        }
    }
}

#[test]
fn elastic_recovery_survives_a_killed_rank_and_exports_gauges() {
    // The same kill as above, but with the recovery-enabled loop: the
    // survivors must agree rank 2 is dead, shrink to a 3-rank world, skip
    // the aborted iteration, and finish the full training budget. The
    // membership epoch and re-shard accounting must land in the telemetry
    // registry (the JSONL surface).
    let telemetry = ClusterTelemetry::new(NODES);
    let plan =
        FaultPlan::new(9).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(1));
    let results = run_elastic(plan, Duration::from_millis(60), 1, Some(telemetry.clone()));
    let survivors = split_survivors(results, 2);
    let reference = &survivors[0].1.losses;
    for (rank, o) in &survivors {
        // Iteration 1 aborted and was skipped: 0 plus 2..ITERS yields one
        // loss fewer than the budget.
        assert_eq!(o.losses.len(), ITERS - 1, "rank {rank}: aborted iteration is skipped");
        assert!(o.losses.iter().all(|l| l.is_finite()), "rank {rank}: losses stay finite");
        assert_eq!(&o.losses, reference, "rank {rank}: survivors agree on every loss");
        assert_eq!(o.world, NODES - 1, "rank {rank}: the world shrank by the dead rank");
        assert_eq!(o.recoveries.len(), 1, "rank {rank}: exactly one recovery");
        let rec = &o.recoveries[0];
        assert_eq!(rec.dead_ranks, vec![2], "rank {rank}");
        assert_eq!(rec.membership_epoch, 1, "rank {rank}");
        assert_eq!(rec.world_size, NODES - 1, "rank {rank}");
        assert_eq!(rec.resume_iteration, 2, "rank {rank}: resume skips the aborted iteration");
        // Going from 4 to 3 uniform chunks, every survivor's slice grows,
        // so every survivor re-seeds some Adam state.
        assert!(rec.reshard.reseeded_params > 0, "rank {rank}: acquired slices were re-seeded");
        assert!(rec.reshard.kept_params > 0, "rank {rank}: overlapping slices kept their state");
    }
    let json = telemetry.registry().snapshot().to_string();
    for gauge in ["membership_epoch", "reseeded_params", "reinitialized_params", "world_size"] {
        assert!(json.contains(gauge), "telemetry snapshot must carry `{gauge}`: {json}");
    }
}

#[test]
fn elastic_recovery_before_first_placement_reinitializes_the_orphan() {
    // Rank 2 dies during iteration 0's dispatch — before any rebalance, so
    // the placement is still the initial uniform one where class 2 lives
    // *only* on rank 2. Recovery must take the fp32-master path for the
    // orphan's surviving slices and canonical re-init for the slice that
    // died with rank 2's shard, and still finish training.
    let plan =
        FaultPlan::new(13).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(0));
    let survivors = split_survivors(run_elastic(plan, Duration::from_millis(60), 1, None), 2);
    let mut reinit_total = 0u64;
    for (rank, o) in &survivors {
        assert_eq!(o.losses.len(), ITERS - 1, "rank {rank}: iteration 0 is skipped");
        assert!(o.losses.iter().all(|l| l.is_finite()), "rank {rank}");
        assert_eq!(o.world, NODES - 1, "rank {rank}");
        assert_eq!(o.recoveries.len(), 1, "rank {rank}");
        let rec = &o.recoveries[0];
        assert_eq!(rec.resume_iteration, 1, "rank {rank}: resume right after the aborted start");
        assert!(
            rec.reshard.reinitialized_params <= rec.reshard.reseeded_params,
            "rank {rank}: re-init is a subset of re-seeding"
        );
        reinit_total += rec.reshard.reinitialized_params;
    }
    // Exactly the orphaned class's dead slice is re-initialized: class 2's
    // fp32 chunk on rank 2 had no surviving fp16 replica and no surviving
    // owner. Every other (class, slice) had a surviving source.
    let param_count = D * DFF + DFF + DFF * D + D;
    assert_eq!(
        reinit_total as usize,
        param_count / NODES,
        "the survivors re-initialize exactly the orphan's dead quarter"
    );
}

#[test]
fn elastic_recovery_during_weight_distribute() {
    // Rank 2 dies mid-materialization: its Adam step for iteration 1 is
    // already applied locally, but its weight-distribute sends never leave.
    // Survivors starve in the distribute phase and must recover — this is
    // the worst case for state freshness (masters stepped, replicas stale),
    // which recovery absorbs by re-sharding from surviving copies.
    //
    // Sequentially the fence is inside iteration 1, so every survivor
    // fails there in lockstep. Under SYMI_OVERLAP=on the scatter stays in
    // flight across the boundary: a survivor may finish iteration 1 with a
    // degraded (rank-local, loudly flagged) advisory exchange and only hit
    // the fatal fence at iteration 2 — so survivors can disagree by one on
    // which iteration they completed, and the membership agreement's
    // max+1 rule is what re-synchronizes them. The invariants below are
    // the mode-independent contract; the sequential branch keeps the
    // stricter lockstep pins.
    let overlap = std::env::var("SYMI_OVERLAP")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
        .unwrap_or(false);
    let plan =
        FaultPlan::new(17).kill(2, MsgMatch::any().phase(WirePhase::WeightDistribute).iteration(1));
    let survivors = split_survivors(run_elastic(plan, Duration::from_millis(60), 1, None), 2);
    let resume = survivors[0].1.recoveries[0].resume_iteration;
    for (rank, o) in &survivors {
        assert!(o.losses.iter().all(|l| l.is_finite()), "rank {rank}");
        assert_eq!(o.world, NODES - 1, "rank {rank}");
        assert_eq!(o.recoveries.len(), 1, "rank {rank}");
        assert_eq!(
            o.recoveries[0].resume_iteration, resume,
            "rank {rank}: survivors must agree on where to resume"
        );
        // Every iteration from the agreed resume point ran on the shrunk
        // world and must be present and non-degraded.
        let post: Vec<u64> = o.loss_iters.iter().copied().filter(|&i| i >= resume).collect();
        assert_eq!(
            post,
            (resume..ITERS as u64).collect::<Vec<u64>>(),
            "rank {rank}: post-recovery iterations all complete"
        );
        for (i, &it) in o.loss_iters.iter().enumerate() {
            assert!(
                it >= resume || !o.loss_degraded[i] || overlap,
                "rank {rank}: sequential pre-kill iterations never degrade"
            );
        }
    }
    if overlap {
        assert!(resume == 2 || resume == 3, "the torn or the following iteration is skipped");
    } else {
        assert_eq!(resume, 2, "the torn iteration is skipped");
    }
    // Loud-or-exact: wherever two survivors both completed an iteration
    // without degradation, their losses must agree bit for bit. (A
    // degraded iteration's loss is rank-local and loudly flagged.)
    let reference = &survivors[0].1;
    for (rank, o) in &survivors[1..] {
        for (i, &it) in o.loss_iters.iter().enumerate() {
            if o.loss_degraded[i] {
                continue;
            }
            if let Some(j) = reference.loss_iters.iter().position(|&ri| ri == it) {
                if !reference.loss_degraded[j] {
                    assert_eq!(
                        o.losses[i], reference.losses[j],
                        "rank {rank}: non-degraded losses at iteration {it} must be bit-exact"
                    );
                }
            }
        }
        if !overlap {
            assert_eq!(o.losses.len(), ITERS - 1, "rank {rank}: the torn iteration is skipped");
            assert_eq!(&o.losses, &reference.losses, "rank {rank}: survivors agree on every loss");
        }
    }
}

#[test]
fn overlapped_cross_iteration_weight_traffic_absorbs_delay_and_duplication() {
    // The overlap scheduler keeps WeightDistribute traffic in flight across
    // the iteration boundary, where it coexists with the *next* iteration's
    // popularity and dispatch phases. Delay its messages past those phases
    // and echo every one of them, run-wide: the structured tags' in-band
    // epochs plus the per-sender sequence filter must keep every landed
    // shard exact — stale-weight application would show up as a loss
    // divergence, which is the forbidden silent outcome.
    let oracle = {
        let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
            let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
            engine.set_overlap(true);
            let x = tokens(ctx.rank());
            let target = Matrix::zeros(T_LOC, D);
            (0..ITERS)
                .map(|_| engine.iteration(ctx, &x, &target).unwrap().loss)
                .collect::<Vec<f32>>()
        });
        results.into_iter().next().expect("rank 0 result")
    };
    // The overlapped path must also be bit-exact vs the sequential oracle.
    assert_eq!(oracle, oracle_losses(), "overlap on/off must be the same math");

    let plan = FaultPlan::new(23)
        .delay(MsgMatch::any().phase(WirePhase::WeightDistribute), 3)
        .duplicate(MsgMatch::any().phase(WirePhase::WeightDistribute));
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_millis(200)));
        ctx.set_retry_policy(Some(RetryPolicy::new(2, 2.0)));
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        engine.set_overlap(true);
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::with_capacity(ITERS);
        for _ in 0..ITERS {
            losses.push(engine.iteration(ctx, &x, &target).map_err(|e| e.to_string())?.loss);
        }
        Ok::<(Vec<f32>, u64, FaultStats), String>((
            losses,
            engine.degraded_iterations(),
            ctx.fault_stats(),
        ))
    });
    let mut injected = 0u64;
    for (rank, r) in results.into_iter().enumerate() {
        let (losses, degraded, faults) = r
            .unwrap_or_else(|p| panic!("rank {rank} panicked: {p}"))
            .unwrap_or_else(|e| panic!("rank {rank} errored: {e}"));
        assert_eq!(losses, oracle, "rank {rank}: faulted overlapped traffic must stay bit-exact");
        assert_eq!(degraded, 0, "rank {rank}: delays/echoes are absorbed, not degraded");
        injected += faults.message_faults();
    }
    assert!(injected > 0, "the plan must actually have injected faults");
}

#[test]
fn elastic_recovery_matches_a_fresh_n_minus_one_oracle_bit_exact() {
    // The acceptance bar: after recovery, the surviving cluster must be
    // mathematically indistinguishable from a *fresh* 3-rank cluster seeded
    // with the recovered state. Phase A kills rank 2 and records every
    // post-recovery loss; phase B replays from the post-recovery snapshots
    // on a clean 3-rank runtime. Bit-exact equality, not tolerance.
    let plan =
        FaultPlan::new(9).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(1));
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_millis(60)));
        ctx.set_retry_policy(Some(RetryPolicy::new(1, 2.0)));
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        let mut snap: Option<EngineSnapshot> = None;
        let mut post_losses = Vec::new();
        while engine.iteration_count() < ITERS as u64 {
            match engine.iteration(ctx, &x, &target) {
                Ok(stats) => {
                    if snap.is_some() {
                        post_losses.push(stats.loss);
                    }
                }
                Err(e) if MoeLayerEngine::can_recover(&e) => {
                    engine.recover(ctx, &e).map_err(|e| e.to_string())?;
                    assert!(snap.is_none(), "this plan kills exactly once");
                    snap = Some(engine.snapshot());
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        Ok((snap.expect("the kill must have triggered recovery"), post_losses))
    });

    // Index survivors by their post-recovery logical rank.
    let mut by_logical: Vec<Option<(EngineSnapshot, Vec<f32>)>> = vec![None; NODES - 1];
    let mut phys_of = vec![0usize; NODES - 1];
    for (phys, r) in results.into_iter().enumerate() {
        match r {
            Err(panic) => {
                assert_eq!(phys, 2, "only the killed rank may panic: {panic}");
            }
            Ok(inner) => {
                let (snap, losses) = inner.unwrap_or_else(|e| panic!("rank {phys}: {e}"));
                let lrank = snap.logical_rank;
                phys_of[lrank] = phys;
                by_logical[lrank] = Some((snap, losses));
            }
        }
    }
    let survivors: Vec<(EngineSnapshot, Vec<f32>)> =
        by_logical.into_iter().map(|s| s.expect("dense logical ranks")).collect();
    assert_eq!(phys_of, vec![0, 1, 3], "survivors compact into dense logical ranks");
    assert!(
        survivors.iter().all(|(_, l)| !l.is_empty()),
        "recovery must leave iterations to compare"
    );

    // Phase B: the oracle. A brand-new 3-rank cluster, seeded from the
    // recovered snapshots, each logical rank feeding the token stream of
    // the physical rank it used to be.
    let snaps = Arc::new(survivors.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>());
    let phys = phys_of.clone();
    let (oracle, _) = Cluster::run(ClusterSpec::flat(NODES - 1), move |ctx| {
        let mut engine = MoeLayerEngine::from_snapshot(cfg(), snaps[ctx.rank()].clone());
        engine.materialize_slots(ctx).expect("oracle materialization is fault-free");
        let x = tokens(phys[ctx.rank()]);
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::new();
        while engine.iteration_count() < ITERS as u64 {
            losses.push(engine.iteration(ctx, &x, &target).expect("oracle is fault-free").loss);
        }
        losses
    });
    for (lrank, ((_, recovered), oracle)) in survivors.iter().zip(&oracle).enumerate() {
        assert_eq!(
            recovered, oracle,
            "logical rank {lrank}: the recovered cluster must be bit-exact vs the fresh oracle"
        );
    }
}

#[test]
fn seeded_fault_matrix_recovers_bit_exact() {
    // CI smoke: a small matrix of recoverable chaos (probabilistic
    // duplicates everywhere, probabilistic dispatch reordering) across
    // seeds. Every cell must reach bit-exact parity with the oracle — a
    // failing seed replays deterministically by construction.
    let oracle = oracle_losses();
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::new(seed)
            .duplicate(MsgMatch::any().probability(0.5))
            .delay(MsgMatch::any().phase(WirePhase::DispatchRows).probability(0.25), 1)
            .delay(MsgMatch::any().phase(WirePhase::DispatchMeta).probability(0.25), 1);
        let outcomes = unwrap_ok(run_chaos(plan, Duration::from_millis(200), 2));
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(o.losses, oracle, "seed {seed}, rank {rank}: recoverable chaos diverged");
            assert_eq!(o.degraded, 0, "seed {seed}, rank {rank}");
        }
        let injected: u64 = outcomes.iter().map(|o| o.faults.message_faults()).sum();
        assert!(injected > 0, "seed {seed}: the plan must actually have injected faults");
    }
}
