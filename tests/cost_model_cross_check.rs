//! Cross-checks between the analytic cost model (§3.3 / A.2 formulas in
//! `symi-netsim`) and *measured* bytes from the real collectives — the two
//! must tell the same story about the paper's data-movement identities.

use symi::{ExpertPlacement, SymiOptimizer};
use symi_collectives::coll::chunk_range;
use symi_collectives::{Cluster, ClusterSpec, TagSpace};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, SystemKind};
use symi_tensor::AdamConfig;

const NODES: usize = 8;
const E: usize = 4;
const S: usize = 2;
const L: usize = 512; // params per expert

/// Measured bytes of one SYMI weight-communication phase.
fn measured_weight_phase(new_counts: &[usize]) -> (u64, u64) {
    let new = ExpertPlacement::from_counts(new_counts, S);
    let (_, report) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let params: Vec<Vec<f32>> = (0..E).map(|_| vec![1.0f32; L]).collect();
        let opt = SymiOptimizer::new(ctx.rank(), NODES, AdamConfig::default(), &params);
        let (a, b) = opt.shard_range();
        let shards: Vec<Vec<f32>> = (0..E).map(|_| vec![0.5f32; b - a]).collect();
        let _ = opt.distribute_weights(ctx, &new, &shards, TagSpace::new(0, 0)).unwrap();
    });
    (report.inter_node_bytes, report.host_device_bytes)
}

/// The paper's per-slot charge: D_W = sN·W in total, sN·W·(N−1)/N over
/// links because each rank's own chunk arrives for free.
fn sn_w_identity() -> u64 {
    let w_bytes = (L * 2) as u64;
    (S * NODES) as u64 * w_bytes * (NODES as u64 - 1) / NODES as u64
}

/// The de-duplicated weight-phase schedule the distribute actually ships:
/// one fp16 chunk per (class, hosting destination rank, source rank)
/// triple — self-delivery and empty chunks skip the wire, and a rank
/// hosting several slots of one class fans the copy out locally.
fn predicted_weight_bytes(placement: &ExpertPlacement) -> u64 {
    let mut total = 0u64;
    for class in 0..E {
        for &dst in placement.host_ranks(class).iter() {
            for src in (0..NODES).filter(|&src| src != dst) {
                let (a, b) = chunk_range(L, NODES, src);
                total += ((b - a) * 2) as u64;
            }
        }
    }
    total
}

#[test]
fn weight_phase_volume_matches_the_dedup_schedule() {
    // Measured bytes must equal the per-(class, host) schedule exactly,
    // and stay under the per-slot sN·W identity (which charges a host once
    // per slot instead of once per class).
    let uniform = vec![NODES * S / E; E];
    let placement = ExpertPlacement::from_counts(&uniform, S);
    let (net, _) = measured_weight_phase(&uniform);
    let expected = predicted_weight_bytes(&placement);
    assert_eq!(net, expected, "measured {net} vs schedule {expected}");
    assert!(net <= sn_w_identity(), "dedup must not exceed the sN·W identity");
}

#[test]
fn weight_phase_volume_never_exceeds_the_sn_w_identity() {
    // §3.3-II's identity is placement-invariant because it charges every
    // slot its full weights. Shipping one copy per hosting rank makes the
    // measured bytes scale with distinct (class, host) pairs — placement-
    // dependent, but always bounded by the identity, which stays the
    // analytic model's (conservative) charge.
    for counts in [vec![NODES * S / E; E], vec![NODES * S - (E - 1), 1, 1, 1]] {
        let placement = ExpertPlacement::from_counts(&counts, S);
        let (net, _) = measured_weight_phase(&counts);
        assert_eq!(net, predicted_weight_bytes(&placement), "counts {counts:?}");
        let identity = sn_w_identity();
        assert!(net <= identity, "counts {counts:?}: measured {net} > identity {identity}");
    }
}

#[test]
fn pcie_staging_matches_e_w_over_n_per_rank() {
    // Host→device staging: each rank pushes its fp16 shard of every class
    // once: E · W/N bytes at 2 B/param (±chunk rounding).
    let uniform = vec![NODES * S / E; E];
    let (_, host_dev) = measured_weight_phase(&uniform);
    let mut expected = 0u64;
    for rank in 0..NODES {
        let (a, b) = chunk_range(L, NODES, rank);
        expected += (E * (b - a) * 2) as u64;
    }
    assert_eq!(host_dev, expected);
}

#[test]
fn grad_collection_bytes_match_algorithm_2_schedule_exactly() {
    // Measured inter-node bytes of the Grad Communication Phase must equal
    // what Algorithm 2's source selection predicts: one shard transfer per
    // (class, destination) pair whose chosen source is remote.
    for counts in [vec![NODES * S / E; E], vec![NODES * S - (E - 1), 1, 1, 1]] {
        let placement = ExpertPlacement::from_counts(&counts, S);
        let predict: u64 = (0..NODES)
            .map(|dst| {
                let (a, b) = chunk_range(L, NODES, dst);
                (0..E)
                    .filter(|&class| {
                        symi::optimizer::get_source(&placement.host_ranks(class), dst) != dst
                    })
                    .count() as u64
                    * ((b - a) * 4) as u64
            })
            .sum();
        let placement2 = placement.clone();
        let (_, report) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
            let params: Vec<Vec<f32>> = (0..E).map(|_| vec![1.0f32; L]).collect();
            let opt = SymiOptimizer::new(ctx.rank(), NODES, AdamConfig::default(), &params);
            let local_grads: Vec<Option<Vec<f32>>> = (0..E)
                .map(|c| placement2.rank_hosts(ctx.rank(), c).then(|| vec![0.1f32; L]))
                .collect();
            let _ = opt.collect_grads(ctx, &placement2, &local_grads, TagSpace::new(0, 0)).unwrap();
        });
        assert_eq!(
            report.inter_node_bytes, predict,
            "counts {counts:?}: measured vs Algorithm 2 prediction"
        );
    }
}

#[test]
fn analytic_model_agrees_with_itself_at_measured_scale() {
    // Evaluate the closed forms at the toy scale used above and confirm the
    // SYMI-vs-static ordering and overhead sign match §3.3.
    let model = CommCostModel {
        nodes: NODES,
        expert_classes: E,
        slots_per_rank: S,
        grad_bytes: (L * 4) as f64,
        weight_bytes: (L * 2) as f64, // fp16 wire width
        optimizer_bytes: (L * 16) as f64,
        hw: HardwareSpec::paper_eval_cluster(),
    };
    let stat = model.costs(SystemKind::StaticBaseline).total();
    let symi = model.costs(SystemKind::Symi).total();
    assert!(symi >= stat, "SYMI's analytic cost is ≥ static (locality delta)");
    let ratio = model.symi_overhead_ratio();
    assert!((0.0..0.25).contains(&ratio), "small-cluster overhead stays modest: {ratio}");
    // And the closed form matches the evaluated difference.
    assert!((ratio - (symi - stat) / stat).abs() < 1e-9);
}

#[test]
fn optimizer_footprint_identity_holds_measured() {
    let (footprints, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let params: Vec<Vec<f32>> = (0..E).map(|_| vec![0.0f32; L]).collect();
        SymiOptimizer::new(ctx.rank(), NODES, AdamConfig::default(), &params).state_bytes()
    });
    let total: u64 = footprints.iter().sum();
    assert_eq!(total, (E * L * 16) as u64, "Σ per-rank state = E·O exactly");
}
