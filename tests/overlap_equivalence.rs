//! Bit-exactness of the overlap scheduler (ISSUE 8's acceptance bar).
//!
//! The overlapped iteration reorders real work: gradient collection is
//! posted before the backward GEMMs, per-class Adam steps fire as shards
//! land, and the weight scatter stays in flight across the iteration
//! boundary. None of that may change a single bit of the training math —
//! the sequential `SYMI_OVERLAP=off` pipeline is the oracle, and every
//! observable (per-iteration losses and stats, drained slot weights, fp32
//! master shards, snapshots) must match it exactly on a multi-rank
//! cluster whose placement actually rebalances.

use symi::{EngineConfig, EngineSnapshot, MoeLayerEngine};
use symi_collectives::{Cluster, ClusterSpec};
use symi_telemetry::ClusterTelemetry;
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const T_LOC: usize = 8;
const ITERS: usize = 8;

fn cfg() -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 31,
        layer_id: 0,
    }
}

/// Skewed token embeddings so popularity shifts and the placement
/// rebalances — the cross-iteration scatter then carries *changing*
/// assignments, not a fixed point.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T_LOC, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T_LOC + r) * D + c) as f32 * 0.613).sin()
    })
}

/// Everything observable a rank produced over a full run.
#[derive(Clone, Debug, PartialEq)]
struct RunObservables {
    losses: Vec<f32>,
    popularity: Vec<Vec<u64>>,
    survived: Vec<usize>,
    dropped: Vec<usize>,
    kept_per_class: Vec<Vec<u64>>,
    replicas: Vec<Vec<usize>>,
    churn: Vec<usize>,
    /// Post-drain per-slot flat weights.
    slot_weights: Vec<Vec<f32>>,
    /// Per-class fp32 master shards.
    master_shards: Vec<Vec<f32>>,
    final_replicas: Vec<usize>,
}

fn run(overlap: bool) -> Vec<RunObservables> {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        engine.set_overlap(overlap);
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        let mut obs = RunObservables {
            losses: Vec::new(),
            popularity: Vec::new(),
            survived: Vec::new(),
            dropped: Vec::new(),
            kept_per_class: Vec::new(),
            replicas: Vec::new(),
            churn: Vec::new(),
            slot_weights: Vec::new(),
            master_shards: Vec::new(),
            final_replicas: Vec::new(),
        };
        for _ in 0..ITERS {
            let stats = engine.iteration(ctx, &x, &target).unwrap();
            assert!(!stats.degraded, "fault-free runs never degrade");
            obs.losses.push(stats.loss);
            obs.popularity.push(stats.popularity);
            obs.survived.push(stats.survived);
            obs.dropped.push(stats.dropped);
            obs.kept_per_class.push(stats.kept_per_class);
            obs.replicas.push(stats.replicas);
            obs.churn.push(stats.placement_churn);
        }
        engine.drain(ctx).unwrap();
        obs.slot_weights = (0..S).map(|l| engine.slot_weights(l)).collect();
        obs.master_shards = (0..E).map(|c| engine.master_shard(c).to_vec()).collect();
        obs.final_replicas = engine.placement.replica_counts();
        obs
    });
    results
}

#[test]
fn overlapped_run_is_bit_exact_vs_sequential() {
    let sequential = run(false);
    let overlapped = run(true);
    for (rank, (seq, ovl)) in sequential.iter().zip(&overlapped).enumerate() {
        assert_eq!(
            seq, ovl,
            "rank {rank}: every observable of the overlapped run must match sequential bit-exact"
        );
    }
    // The placement must actually have moved during the run, or the
    // cross-iteration scatter was never exercised against a *changing*
    // placement and this test proves less than it claims.
    assert!(
        sequential[0].churn.iter().sum::<usize>() > 0,
        "the workload must force at least one rebalance: {:?}",
        sequential[0].churn
    );
}

#[test]
fn snapshot_with_scatter_in_flight_restarts_bit_exact() {
    // Snapshot an overlapped run *without draining* — the weight scatter
    // for the next placement is still in flight. The snapshot must
    // fast-forward to the pending placement (the masters have already
    // stepped), so a fresh cluster restored from it and materialized from
    // the fp32 masters continues with exactly the losses the original
    // (drained, continued) run produces.
    let halfway = ITERS / 2;
    let (first, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        engine.set_overlap(true);
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        for _ in 0..halfway {
            engine.iteration(ctx, &x, &target).unwrap();
        }
        let snap = engine.snapshot();
        // The original keeps going, scatter still in flight.
        let tail: Vec<f32> =
            (halfway..ITERS).map(|_| engine.iteration(ctx, &x, &target).unwrap().loss).collect();
        (snap, tail)
    });
    let (snaps, tails): (Vec<EngineSnapshot>, Vec<Vec<f32>>) = first.into_iter().unzip();

    let snaps = std::sync::Arc::new(snaps);
    let (restored_tails, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let mut engine = MoeLayerEngine::from_snapshot(cfg(), snaps[ctx.rank()].clone());
        engine.set_overlap(true);
        engine.materialize_slots(ctx).unwrap();
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        (halfway..ITERS)
            .map(|_| engine.iteration(ctx, &x, &target).unwrap().loss)
            .collect::<Vec<f32>>()
    });
    for (rank, (orig, restored)) in tails.iter().zip(&restored_tails).enumerate() {
        assert_eq!(
            orig, restored,
            "rank {rank}: restart from an in-flight snapshot must continue bit-exact"
        );
    }
}

#[test]
fn drain_is_idempotent_and_lands_the_pending_placement() {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        engine.set_overlap(true);
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        let _ = engine.iteration(ctx, &x, &target).unwrap();
        let before = engine.placement.replica_counts();
        engine.drain(ctx).unwrap();
        let after = engine.placement.replica_counts();
        // A second drain has nothing in flight and must be a no-op.
        engine.drain(ctx).unwrap();
        assert_eq!(after, engine.placement.replica_counts());
        (before, after)
    });
    // The skewed workload rebalances away from uniform on iteration 0, so
    // the drain observably switches the placement.
    let (before, after) = &results[0];
    assert_eq!(before, &vec![S * NODES / E; E], "pre-drain placement is still the initial one");
    assert_ne!(before, after, "drain must land the rebalanced placement");
}

#[test]
fn overlap_telemetry_attributes_hidden_bytes() {
    let telemetry = ClusterTelemetry::new(NODES);
    let tele = telemetry.clone();
    let (_, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        engine.set_overlap(true);
        engine.attach_telemetry(tele.handle(ctx.rank()));
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        for _ in 0..4 {
            engine.iteration(ctx, &x, &target).unwrap();
        }
        engine.drain(ctx).unwrap();
    });
    let json = telemetry.registry().snapshot().to_string();
    for gauge in ["overlap_hidden_bytes", "overlap_exposed_bytes", "overlap_exposed_ms"] {
        assert!(json.contains(gauge), "telemetry must carry `{gauge}`: {json}");
    }
}
