//! End-to-end convergence behaviour of the functional training stack:
//! the three placement policies plugged into the same model/corpus.

use symi::SymiPolicy;
use symi_baselines::FlexMoePolicy;
use symi_model::{ModelConfig, Trainer, UniformPolicy};
use symi_workload::{CorpusConfig, DriftingCorpus};

fn corpus(cfg: &ModelConfig, seed: u64) -> DriftingCorpus {
    DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 4,
        seed,
        ..CorpusConfig::default()
    })
}

#[test]
fn symi_policy_trains_and_adapts() {
    let cfg = ModelConfig::tiny();
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let mut c = corpus(&cfg, 1);
    trainer.train(&mut c, 50);

    // Loss decreases.
    let first: f32 = trainer.record.losses[..10].iter().sum::<f32>() / 10.0;
    let last: f32 = trainer.record.losses[40..].iter().sum::<f32>() / 10.0;
    assert!(last < first - 0.15, "first {first:.3} last {last:.3}");

    // Placement adapts: replica vectors change over the run and always
    // fill all slots with ≥1 per class.
    let reps = &trainer.record.replicas[0];
    assert!(reps.windows(2).any(|w| w[0] != w[1]), "SYMI must re-place experts");
    for r in reps {
        assert_eq!(r.iter().sum::<usize>(), cfg.total_slots);
        assert!(r.iter().all(|&c| c >= 1));
    }
}

#[test]
fn symi_survival_beats_static_and_flexmoe_sits_between() {
    let cfg = ModelConfig::tiny();
    let mut results = Vec::new();
    for (name, policy) in [
        (
            "deepspeed",
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots })
                as Box<dyn symi_model::PlacementPolicy>,
        ),
        ("flexmoe-10", Box::new(FlexMoePolicy::new(cfg.total_slots, 10))),
        ("symi", Box::new(SymiPolicy { total_slots: cfg.total_slots })),
    ] {
        let mut trainer = Trainer::new(cfg, policy);
        let mut c = corpus(&cfg, 7);
        trainer.train(&mut c, 60);
        results.push((name, trainer.record.mean_survival()));
    }
    let ds = results[0].1;
    let flex = results[1].1;
    let symi = results[2].1;
    assert!(
        symi >= flex && flex >= ds - 0.02,
        "survival ordering violated: ds {ds:.3} flex {flex:.3} symi {symi:.3}"
    );
    assert!(symi > ds, "adaptive replication must beat static: {symi:.3} vs {ds:.3}");
}

#[test]
fn symi_moves_replicas_freely_while_flexmoe_moves_rarely() {
    let cfg = ModelConfig::tiny();
    let mut symi = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let mut flex = Trainer::new(cfg, Box::new(FlexMoePolicy::new(cfg.total_slots, 10)));
    let mut c1 = corpus(&cfg, 3);
    let mut c2 = corpus(&cfg, 3);
    symi.train(&mut c1, 40);
    flex.train(&mut c2, 40);

    let symi_moving_iters = symi.record.moved_replicas.iter().filter(|&&m| m > 0).count();
    let flex_moving_iters = flex.record.moved_replicas.iter().filter(|&&m| m > 0).count();
    assert!(
        symi_moving_iters > flex_moving_iters,
        "SYMI re-places per iteration ({symi_moving_iters}) vs FlexMoE intervals ({flex_moving_iters})"
    );
    // FlexMoE only moves on multiples of its interval.
    for (t, &m) in flex.record.moved_replicas.iter().enumerate() {
        if m > 0 {
            assert_eq!((t + 1) % 10, 0, "FlexMoE moved outside its interval at iter {t}");
        }
    }
}

#[test]
fn capacity_factor_controls_survival_monotonically() {
    let base = ModelConfig::tiny();
    let mut prev = 0.0f64;
    for cf in [0.5f32, 1.0, 2.0, 8.0] {
        let cfg = ModelConfig { capacity_factor: cf, ..base };
        let mut trainer = Trainer::new(
            cfg,
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
        );
        let mut c = corpus(&cfg, 5);
        trainer.train(&mut c, 12);
        let s = trainer.record.mean_survival();
        assert!(s >= prev - 1e-9, "survival must grow with capacity: cf {cf} gave {s:.3}");
        prev = s;
    }
    assert!((prev - 1.0).abs() < 1e-9, "x8 capacity must keep every token here");
}

#[test]
fn deterministic_runs_reproduce_bit_for_bit() {
    let cfg = ModelConfig::tiny();
    let run = |seed: u64| {
        let mut t = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
        let mut c = corpus(&cfg, seed);
        t.train(&mut c, 10);
        t.record.losses.clone()
    };
    assert_eq!(run(9), run(9), "same seed, same losses");
    assert_ne!(run(9), run(10), "different data, different losses");
}
