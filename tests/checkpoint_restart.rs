//! Checkpoint/restart contract, end to end on the thread-per-rank cluster:
//!
//! 1. **Non-interference**: a healthy run with cadence checkpointing
//!    produces losses identical to the no-checkpoint oracle, and leaves a
//!    complete, validated set on disk for every cadence boundary.
//! 2. **Kill-whole-cluster restart**: every rank dies mid-iteration (power
//!    loss). A fresh cluster restores the latest *complete* set via
//!    `MoeLayerEngine::from_snapshot` + `materialize_slots` and finishes
//!    the run; losses from the resume point equal the uninterrupted
//!    same-seed oracle `==` bit for bit.
//! 3. **Loud rejection + fallback**: a torn file and a bit-flipped file in
//!    the newest sets are rejected with diagnostics naming the file and the
//!    field/section, restore falls back to the newest fully-valid set, and
//!    the resumed run is still bit-exact.
//!
//! The healthy scenario honors `SYMI_CKPT_DIR` so CI can keep the artifact
//! and cross-check it with `symi-ckpt validate`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use symi::{EngineConfig, MoeLayerEngine};
use symi_checkpoint::{CheckpointConfig, CheckpointManager, CheckpointStats, CheckpointStore};
use symi_collectives::{Cluster, ClusterSpec, FaultPlan, MsgMatch, RetryPolicy, WirePhase};
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const T_LOC: usize = 8;
const ITERS: usize = 8;
const CADENCE: u64 = 2;

fn cfg() -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 31,
        layer_id: 0,
    }
}

/// Mildly skewed token embeddings so the placement actually rebalances.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T_LOC, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T_LOC + r) * D + c) as f32 * 0.613).sin()
    })
}

fn temp_ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symi_ckpt_restart_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted same-seed oracle: no checkpoint machinery at all.
fn oracle_losses() -> Vec<f32> {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        (0..ITERS).map(|_| engine.iteration(ctx, &x, &target).unwrap().loss).collect::<Vec<f32>>()
    });
    results.into_iter().next().expect("rank 0 result")
}

/// The per-rank training loop with cadence checkpointing. Flushes after
/// each accepted checkpoint so the on-disk contents are deterministic for
/// the assertions (the async cost story lives in the bench, not here).
fn train_with_checkpoints(
    ctx: &mut symi_collectives::RankCtx,
    dir: &Path,
) -> Result<(Vec<f32>, CheckpointStats), String> {
    let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg());
    let mut manager =
        CheckpointManager::new(CheckpointConfig::new(dir).with_cadence(CADENCE).with_keep(ITERS))
            .map_err(|e| e.to_string())?;
    let x = tokens(ctx.rank());
    let target = Matrix::zeros(T_LOC, D);
    let mut losses = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        losses.push(engine.iteration(ctx, &x, &target).map_err(|e| e.to_string())?.loss);
        if manager.maybe_checkpoint(ctx, &engine).map_err(|e| e.to_string())?.is_some() {
            manager.flush();
        }
    }
    Ok((losses, manager.stats()))
}

/// Restores the newest complete set from `dir` and finishes the run on a
/// fresh cluster. Returns the restored iteration and per-rank resumed
/// losses. Panics (failing the test) if nothing is restorable.
fn resume_from_latest(dir: &Path) -> (u64, Vec<Vec<f32>>) {
    let store = CheckpointStore::new(dir).expect("open checkpoint dir");
    let latest = store.load_latest_engine(NODES, Some(&cfg())).expect("scan checkpoint dir");
    let (iteration, snaps) = latest.loaded.expect("a complete restorable checkpoint set");
    let snaps = Arc::new(snaps);
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let mut engine = MoeLayerEngine::from_snapshot(cfg(), snaps[ctx.rank()].clone());
        engine.materialize_slots(ctx).expect("rematerialize fp16 slots from fp32 masters");
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::new();
        while engine.iteration_count() < ITERS as u64 {
            losses.push(engine.iteration(ctx, &x, &target).expect("resumed iteration").loss);
        }
        losses
    });
    (iteration, results)
}

#[test]
fn healthy_cadence_run_is_loss_identical_and_leaves_validated_checkpoints() {
    // CI points SYMI_CKPT_DIR at a workspace path and then runs
    // `symi-ckpt validate` over the artifact this test leaves behind.
    let (dir, keep_artifact) = match std::env::var_os("SYMI_CKPT_DIR") {
        Some(d) => (PathBuf::from(d), true),
        None => (temp_ckpt_dir("healthy"), false),
    };
    let _ = std::fs::remove_dir_all(&dir);

    let oracle = oracle_losses();
    let run_dir = dir.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        train_with_checkpoints(ctx, &run_dir).expect("healthy training run")
    });

    let expected_stamps: Vec<u64> = (1..=ITERS as u64).filter(|it| it % CADENCE == 0).collect();
    for (rank, (losses, stats)) in results.iter().enumerate() {
        assert_eq!(losses, &oracle, "rank {rank}: checkpointing must not perturb training");
        assert_eq!(stats.cadence_hits, expected_stamps.len() as u64, "rank {rank}");
        assert_eq!(stats.snapshots_submitted, expected_stamps.len() as u64, "rank {rank}");
        assert_eq!(stats.writes_completed, expected_stamps.len() as u64, "rank {rank}");
        assert_eq!(stats.writes_failed, 0, "rank {rank}");
        assert_eq!(stats.skipped, 0, "rank {rank}");
        assert!(stats.bytes_written > 0, "rank {rank}");
    }

    // Every cadence boundary left a complete set, and the newest restores.
    let store = CheckpointStore::new(&dir).unwrap();
    assert_eq!(store.complete_engine_iterations(NODES).unwrap(), expected_stamps);
    let latest = store.load_latest_engine(NODES, Some(&cfg())).unwrap();
    let (it, snaps) = latest.loaded.expect("newest set restores");
    assert_eq!(it, ITERS as u64);
    assert_eq!(snaps.len(), NODES);
    assert!(latest.rejected.is_empty());

    if !keep_artifact {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_whole_cluster_then_restart_is_bit_exact_vs_uninterrupted_oracle() {
    let dir = temp_ckpt_dir("kill_all");
    let oracle = oracle_losses();

    // Power-loss scenario: every rank dies at its first DispatchRows event
    // of iteration 5. Checkpoints stamped 2 and 4 are durable by then
    // (flushed at the cadence boundary); stamp 6 never happens.
    let plan =
        FaultPlan::new(7).kill_all(MsgMatch::any().phase(WirePhase::DispatchRows).iteration(5));
    let run_dir = dir.clone();
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(NODES), plan, move |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_millis(500)));
        ctx.set_retry_policy(Some(RetryPolicy::new(1, 2.0)));
        train_with_checkpoints(ctx, &run_dir)
    });
    for (rank, result) in results.iter().enumerate() {
        let died_or_starved = match result {
            Err(panic_msg) => panic_msg.contains("cluster-wide kill"),
            // A rank can also observe its peers' death as a comm error
            // before its own kill point fires.
            Ok(Err(_)) => true,
            Ok(Ok(_)) => false,
        };
        assert!(died_or_starved, "rank {rank} must not survive a cluster-wide kill: {result:?}");
    }

    // Restart: latest complete set is iteration 4 — stamped strictly before
    // the crash, never partially overwritten by it.
    let (iteration, resumed) = resume_from_latest(&dir);
    assert_eq!(iteration, 4, "latest complete checkpoint precedes the crash");
    for (rank, losses) in resumed.iter().enumerate() {
        assert_eq!(
            losses,
            &oracle[iteration as usize..],
            "rank {rank}: resumed losses must equal the oracle bit-for-bit"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_and_corrupt_files_are_rejected_loudly_and_restore_falls_back() {
    let dir = temp_ckpt_dir("torn");
    let oracle = oracle_losses();
    let run_dir = dir.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        train_with_checkpoints(ctx, &run_dir).expect("healthy training run")
    });
    assert_eq!(results.len(), NODES);

    // Sabotage the two newest sets: bit-flip inside iteration 8's rank-2
    // payload (CRC mismatch) and truncate iteration 6's rank-1 file
    // mid-payload (torn write that somehow skipped the atomic rename).
    let store = CheckpointStore::new(&dir).unwrap();
    let flipped = store.engine_path(8, 2);
    let mut bytes = std::fs::read(&flipped).unwrap();
    let at = bytes.len() - 20;
    bytes[at] ^= 0x04;
    std::fs::write(&flipped, &bytes).unwrap();
    let torn = store.engine_path(6, 1);
    let full = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &full[..full.len() / 2]).unwrap();

    let latest = store.load_latest_engine(NODES, Some(&cfg())).unwrap();
    let (it, _) = latest.loaded.expect("fallback set restores");
    assert_eq!(it, 4, "falls back past both damaged sets");
    assert_eq!(latest.rejected.len(), 2, "both damaged sets diagnosed: {:?}", latest.rejected);
    assert!(
        latest.rejected[0].contains("ckpt-it0000000008-rank002.bin")
            && latest.rejected[0].contains("CRC"),
        "newest rejection names the file and the CRC failure: {}",
        latest.rejected[0]
    );
    assert!(
        latest.rejected[1].contains("ckpt-it0000000006-rank001.bin")
            && latest.rejected[1].contains("truncated")
            && latest.rejected[1].contains("payload"),
        "torn-file rejection names the file and the field: {}",
        latest.rejected[1]
    );

    // The fallback checkpoint is not merely present — it restores and
    // resumes bit-exactly.
    let (iteration, resumed) = resume_from_latest(&dir);
    assert_eq!(iteration, 4);
    for (rank, losses) in resumed.iter().enumerate() {
        assert_eq!(losses, &oracle[4..], "rank {rank}: fallback resume is bit-exact");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
