//! Shared helpers for the cross-crate integration tests.

use symi_tensor::Matrix;

/// Deterministic pseudo-token embeddings for a rank's local batch.
pub fn token_matrix(rank: usize, t_loc: usize, d: usize) -> Matrix {
    Matrix::from_fn(t_loc, d, |r, c| (((rank * t_loc + r) * d + c) as f32 * 0.137).sin())
}

/// Max absolute difference between two flat float slices.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}
