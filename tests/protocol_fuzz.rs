//! Protocol stress fuzzer for the optimizer p2p wire protocol.
//!
//! The bug class under test: the retired XOR tag scheme let a GradCollect
//! message and a WeightDistribute message land on the *same* `(from, tag)`
//! channel (`tag(8) ^ tag(9) == 1 << 28`, exactly the bit that slot 16's
//! `<< 24` salt sets). In a sequential phase order the per-channel FIFO
//! hid the aliasing; in an overlapped batch — weight receives posted
//! before grad receives, as a fused Grad+Weight Communication Phase does —
//! the two identical-length shards silently swap.
//!
//! The suite drives the same overlapped exchange through three protocol
//! configurations:
//!
//! 1. the legacy XOR scheme, reproducing the silent corruption against a
//!    single-rank oracle (kept as a regression fixture);
//! 2. the legacy scheme under epoch fencing, which turns the swap into a
//!    loud [`CommError::RecvTimeout`] with a decoded stash dump;
//! 3. the structured [`TagSpace`], bit-exact against the oracle across
//!    skewed multi-layer ≥16-slot configs with injected per-rank delays.

use std::time::Duration;
use symi::optimizer::get_source;
use symi::{ExpertPlacement, SymiOptimizer};
use symi_collectives::coll::chunk_range;
use symi_collectives::p2p::{RecvOp, SendOp};
use symi_collectives::{Cluster, ClusterSpec, CommError, TagSpace, WirePhase};
use symi_tensor::AdamConfig;

/// Deterministic corruption config: 6 ranks × 3 slots = 18 slots, slot 16
/// on rank 5, class 0 hosted only on rank 0 (`get_source` → 0 everywhere).
const N: usize = 6;
const S: usize = 3;
const COUNTS: [usize; 6] = [1, 4, 4, 3, 3, 3];
/// Params per class: divisible by N so every chunk is the same length —
/// the precondition for the swap to pass the wire length check.
const L: usize = 24;

fn legacy_base(it: u64, phase: u64) -> u64 {
    (it << 32) ^ (phase << 28)
}

fn legacy_grad_tag(it: u64, class: usize) -> u64 {
    legacy_base(it, 8) ^ ((class as u64) << 20)
}

fn legacy_weight_tag(it: u64, slot: usize, src: usize) -> u64 {
    legacy_base(it, 9) ^ ((slot as u64) << 24) ^ ((src as u64) << 8)
}

/// Full flat gradient of `class`, identical on every rank (post-allreduce).
fn grad_of(class: usize) -> Vec<f32> {
    (0..L).map(|i| (class * 1000 + i) as f32 * 0.5).collect()
}

/// Full flat updated weights of `class` — distinct from every gradient so a
/// swap is detectable.
fn weights_of(class: usize) -> Vec<f32> {
    (0..L).map(|i| -((class * 1000 + i) as f32)).collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Scheme {
    /// Raw XOR tags, no epochs: the original protocol.
    LegacyXor,
    /// Raw XOR tags with `begin_epoch` fencing: aliasing becomes loud.
    LegacyXorFenced,
    /// Structured `TagSpace` tags: aliasing is impossible by construction.
    Structured,
}

/// One overlapped Grad+Weight exchange: every send of both phases is issued
/// before any receive, and the receive batch posts **weight receives
/// first** — the schedule a fused communication phase produces.
///
/// Returns `(grad chunk per class, full weights per local slot)`.
#[allow(clippy::type_complexity)]
fn overlapped_exchange(
    ctx: &mut symi_collectives::RankCtx,
    placement: &ExpertPlacement,
    scheme: Scheme,
    it: u64,
) -> Result<(Vec<Vec<f32>>, Vec<Vec<f32>>), CommError> {
    let me = ctx.rank();
    let n = placement.ranks();
    let s = placement.slots_per_rank();
    let e = placement.replica_counts().len();
    let tags = TagSpace::new(0, it);
    let grad_tag = |class: usize, src: usize| match scheme {
        Scheme::Structured => tags.tag(WirePhase::GradCollect, class, src),
        _ => legacy_grad_tag(it, class),
    };
    let weight_tag = |slot: usize, src: usize| match scheme {
        Scheme::Structured => tags.tag(WirePhase::WeightDistribute, slot, src),
        _ => legacy_weight_tag(it, slot, src),
    };

    if scheme == Scheme::LegacyXorFenced {
        ctx.begin_epoch(it, WirePhase::GradCollect);
    }
    let mut sends = Vec::new();
    for class in 0..e {
        let hosts = placement.host_ranks(class);
        if !hosts.contains(&me) {
            continue;
        }
        let grad = grad_of(class);
        for dst in 0..n {
            if dst != me && get_source(&hosts, dst) == me {
                let (a, b) = chunk_range(L, n, dst);
                sends.push(SendOp::new(dst, grad_tag(class, me), grad[a..b].to_vec()));
            }
        }
    }
    // Grad sends leave while the sender is still in the grad phase (so a
    // fencing sender stamps them with the grad epoch); only the receives
    // are deferred into the overlapped batch below.
    ctx.batch_isend_irecv(sends, &[])?;
    if scheme == Scheme::LegacyXorFenced {
        ctx.begin_epoch(it, WirePhase::WeightDistribute);
    }
    let mut sends = Vec::new();
    let (ma, mb) = chunk_range(L, n, me);
    for slot in 0..placement.total_slots() {
        let class = placement.class_of_slot(slot);
        sends.push(SendOp::new(
            placement.rank_of_slot(slot),
            weight_tag(slot, me),
            weights_of(class)[ma..mb].to_vec(),
        ));
    }

    // Weight receives first, then grad receives — the overlap that exposes
    // the aliasing.
    let mut recvs = Vec::new();
    for local in 0..s {
        let slot = me * s + local;
        for src in 0..n {
            let (a, b) = chunk_range(L, n, src);
            recvs.push(RecvOp::sized(src, weight_tag(slot, src), b - a));
        }
    }
    let mut grad_srcs = Vec::new();
    for class in 0..e {
        let src = get_source(&placement.host_ranks(class), me);
        grad_srcs.push(src);
        if src != me {
            recvs.push(RecvOp::sized(src, grad_tag(class, src), mb - ma));
        }
    }

    let mut received = ctx.batch_isend_irecv(sends, &recvs)?.into_iter();
    let mut slot_weights = Vec::with_capacity(s);
    for _local in 0..s {
        let mut full = vec![0.0f32; L];
        for src in 0..n {
            let (a, b) = chunk_range(L, n, src);
            full[a..b].copy_from_slice(&received.next().expect("weight recv").into_f32()?);
        }
        slot_weights.push(full);
    }
    let mut grad_chunks = Vec::with_capacity(e);
    for (class, &src) in grad_srcs.iter().enumerate() {
        if src == me {
            grad_chunks.push(grad_of(class)[ma..mb].to_vec());
        } else {
            grad_chunks.push(received.next().expect("grad recv").into_f32()?);
        }
    }
    Ok((grad_chunks, slot_weights))
}

/// What a correct exchange must produce on `rank` — computed locally with
/// no communication at all.
#[allow(clippy::type_complexity)]
fn oracle(placement: &ExpertPlacement, rank: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let n = placement.ranks();
    let s = placement.slots_per_rank();
    let e = placement.replica_counts().len();
    let (ma, mb) = chunk_range(L, n, rank);
    let grads = (0..e).map(|c| grad_of(c)[ma..mb].to_vec()).collect();
    let weights =
        (0..s).map(|local| weights_of(placement.class_of_slot(rank * s + local))).collect();
    (grads, weights)
}

#[test]
fn legacy_overlap_silently_swaps_identical_length_shards() {
    let placement = ExpertPlacement::from_counts(&COUNTS, S);
    assert_eq!(placement.rank_of_slot(16), 5);
    assert_eq!(placement.host_ranks(0), vec![0]);
    assert_eq!(legacy_grad_tag(3, 0), legacy_weight_tag(3, 16, 0), "the aliasing pair");

    let p = placement.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(N), move |ctx| {
        overlapped_exchange(ctx, &p, Scheme::LegacyXor, 3).expect("legacy run must NOT error")
    });

    let (g5, w5) = &results[5];
    let (oracle_g5, oracle_w5) = oracle(&placement, 5);
    // Slot 16 is local slot 1 on rank 5; its first chunk (src 0) took the
    // class-0 gradient chunk bound for rank 5, and the class-0 gradient
    // took slot 16's weight chunk — a silent, wire-legal swap.
    let (a5, b5) = chunk_range(L, N, 5);
    assert_eq!(w5[1][0..4], grad_of(0)[a5..b5], "slot 16 weights hold gradient data");
    assert_eq!(g5[0], weights_of(placement.class_of_slot(16))[0..4], "grad chunk holds weights");
    assert_ne!(w5[1], oracle_w5[1]);
    assert_ne!(g5[0], oracle_g5[0]);
    // Every other rank came out clean — nothing flags the corruption.
    for (rank, (g, w)) in results.iter().enumerate().take(5) {
        let (og, ow) = oracle(&placement, rank);
        assert_eq!((g, w), (&og, &ow), "rank {rank} should be (deceptively) intact");
    }
}

#[test]
fn epoch_fence_turns_the_swap_into_a_loud_timeout() {
    let placement = ExpertPlacement::from_counts(&COUNTS, S);
    let p = placement.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(N), move |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_millis(100)));
        let out = overlapped_exchange(ctx, &p, Scheme::LegacyXorFenced, 3);
        (out.err(), ctx.protocol_stats())
    });
    // Rank 5's aliased weight receive finds the cross-phase gradient at
    // the front of its channel, fences it, and times out with the decoded
    // stash — corruption became diagnosis.
    let (err, stats) = &results[5];
    match err.as_ref().expect("fenced run must fail loudly") {
        CommError::RecvTimeout { from, tag, fenced, pending, .. } => {
            assert_eq!(*from, 0);
            assert!(tag.contains("raw:"), "raw tag must decode as raw: {tag}");
            assert!(*fenced >= 1, "the aliased message must be counted as fenced");
            assert!(!pending.is_empty(), "stash dump must name the stuck messages");
            assert!(
                pending.iter().any(|line| line.contains("epoch=")),
                "stash lines carry epochs: {pending:?}"
            );
        }
        other => panic!("expected RecvTimeout, got {other:?}"),
    }
    assert!(stats.fenced_messages >= 1);
    assert!(stats.recv_timeouts >= 1);
    // No rank anywhere accepted cross-phase data silently.
    for (rank, (err, _)) in results.iter().enumerate() {
        assert!(
            err.is_none() || matches!(err, Some(CommError::RecvTimeout { .. })),
            "rank {rank}: only loud timeouts are acceptable, got {err:?}"
        );
    }
}

#[test]
fn sequential_phases_with_epochs_stay_clean() {
    // Phased raw-tag code (grad recvs complete before the weight phase
    // begins) must not trip the fence: epochs agree on both sides of every
    // exchange.
    let placement = ExpertPlacement::from_counts(&COUNTS, S);
    let p = placement.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(N), move |ctx| {
        let me = ctx.rank();
        let n = p.ranks();
        let e = p.replica_counts().len();
        let it = 7u64;
        ctx.set_recv_timeout(Some(Duration::from_millis(500)));

        ctx.begin_epoch(it, WirePhase::GradCollect);
        let mut sends = Vec::new();
        for class in 0..e {
            let hosts = p.host_ranks(class);
            if !hosts.contains(&me) {
                continue;
            }
            let grad = grad_of(class);
            for dst in 0..n {
                if dst != me && get_source(&hosts, dst) == me {
                    let (a, b) = chunk_range(L, n, dst);
                    sends.push(SendOp::new(dst, legacy_grad_tag(it, class), grad[a..b].to_vec()));
                }
            }
        }
        let (ma, mb) = chunk_range(L, n, me);
        let recvs: Vec<RecvOp> = (0..e)
            .filter_map(|class| {
                let src = get_source(&p.host_ranks(class), me);
                (src != me).then(|| RecvOp::sized(src, legacy_grad_tag(it, class), mb - ma))
            })
            .collect();
        ctx.batch_isend_irecv(sends, &recvs).unwrap();

        ctx.begin_epoch(it, WirePhase::WeightDistribute);
        let mut sends = Vec::new();
        for slot in 0..p.total_slots() {
            let class = p.class_of_slot(slot);
            sends.push(SendOp::new(
                p.rank_of_slot(slot),
                legacy_weight_tag(it, slot, me),
                weights_of(class)[ma..mb].to_vec(),
            ));
        }
        let mut recvs = Vec::new();
        for local in 0..p.slots_per_rank() {
            let slot = me * p.slots_per_rank() + local;
            for src in 0..n {
                let (a, b) = chunk_range(L, n, src);
                recvs.push(RecvOp::sized(src, legacy_weight_tag(it, slot, src), b - a));
            }
        }
        ctx.batch_isend_irecv(sends, &recvs).unwrap();
        ctx.protocol_stats()
    });
    for (rank, stats) in results.iter().enumerate() {
        assert_eq!(stats.fenced_messages, 0, "rank {rank}: sequential phases must not fence");
        assert_eq!(stats.recv_timeouts, 0, "rank {rank}: no timeouts");
    }
}

#[test]
fn structured_tags_are_bit_exact_under_overlap_skew_and_delays() {
    // Fuzz the fixed corruption config and a second skewed ≥16-slot shape,
    // multiple iterations each, with per-rank delays injected between the
    // phases to scramble arrival order. Two layers share every rank's
    // mailbox in alternating order to stress the layer field too.
    let shapes: Vec<(usize, usize, Vec<usize>)> = vec![
        (N, S, COUNTS.to_vec()),
        (8, 2, vec![13, 1, 1, 1]), // 16 slots, extreme popularity skew
    ];
    for (n, s, counts) in shapes {
        let placement = ExpertPlacement::from_counts(&counts, s);
        assert!(placement.total_slots() >= 16);
        let p = placement.clone();
        let (results, _) = Cluster::run(ClusterSpec::flat(n), move |ctx| {
            let mut out = Vec::new();
            for it in 0..3u64 {
                // Skew: every rank stalls differently, so stash ordering
                // differs from send ordering on every channel.
                std::thread::sleep(Duration::from_millis((ctx.rank() as u64 * 7 + it) % 11));
                out.push(overlapped_exchange(ctx, &p, Scheme::Structured, it).unwrap());
            }
            out
        });
        for (rank, iters) in results.iter().enumerate() {
            let expect = oracle(&placement, rank);
            for (it, got) in iters.iter().enumerate() {
                assert_eq!(*got, expect, "rank {rank} iteration {it} must be bit-exact");
            }
        }
    }
}

#[test]
fn symi_optimizer_is_bit_exact_against_a_single_rank_oracle() {
    // The real optimizer pipeline — collect → Adam → fp16 distribute —
    // across skewed multi-rank configs with re-placement between
    // iterations, compared bit-for-bit against one optimizer instance that
    // owns everything.
    let shapes: Vec<(usize, usize, Vec<usize>, Vec<usize>)> = vec![
        (N, S, COUNTS.to_vec(), vec![4, 4, 4, 2, 2, 2]),
        (8, 2, vec![4, 4, 4, 4], vec![13, 1, 1, 1]),
    ];
    for (n, s, counts, new_counts) in shapes {
        let e = counts.len();
        let class_params: Vec<Vec<f32>> =
            (0..e).map(|c| (0..L).map(|i| ((c * 31 + i) as f32 * 0.07).sin()).collect()).collect();
        let grads: Vec<Vec<f32>> =
            (0..e).map(|c| (0..L).map(|i| ((c * 17 + i) as f32 * 0.13).cos()).collect()).collect();
        let placements = [
            ExpertPlacement::from_counts(&counts, s),
            ExpertPlacement::from_counts(&new_counts, s),
        ];

        let cp = class_params.clone();
        let gr = grads.clone();
        let pl = placements.clone();
        let (results, _) = Cluster::run(ClusterSpec::flat(n), move |ctx| {
            std::thread::sleep(Duration::from_millis((ctx.rank() as u64 * 5) % 9));
            let mut opt = SymiOptimizer::new(ctx.rank(), n, AdamConfig::default(), &cp);
            let mut latest = Vec::new();
            for it in 0..3u64 {
                // Collect under the iteration's placement, distribute under
                // the next one — SYMI's free re-placement.
                let collect_p = &pl[(it as usize) % 2];
                let distribute_p = &pl[(it as usize + 1) % 2];
                let tags = TagSpace::new(0, it);
                let local: Vec<Option<Vec<f32>>> = (0..e)
                    .map(|c| collect_p.rank_hosts(ctx.rank(), c).then(|| gr[c].clone()))
                    .collect();
                let shards = opt.collect_grads(ctx, collect_p, &local, tags).unwrap();
                let updated = opt.step(&shards);
                latest = opt.distribute_weights(ctx, distribute_p, &updated, tags).unwrap();
            }
            latest
        });

        // Single-rank oracle: one optimizer owns every shard; Adam is
        // elementwise, so chunked and whole-vector stepping agree exactly.
        let mut oracle_opt = SymiOptimizer::new(0, 1, AdamConfig::default(), &class_params);
        let mut oracle_weights = Vec::new();
        for _ in 0..3 {
            oracle_weights = oracle_opt.step(&grads);
        }
        let final_p = &placements[1]; // distribute placement of it = 2
        for (rank, slots) in results.iter().enumerate() {
            for (local, got) in slots.iter().enumerate() {
                let class = final_p.class_of_slot(rank * s + local);
                assert_eq!(
                    got, &oracle_weights[class],
                    "rank {rank} slot {local}: fp16 distribute must be bit-exact"
                );
            }
        }
    }
}
