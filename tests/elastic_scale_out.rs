//! Elastic scale-OUT: a standby rank joins a running cluster.
//!
//! The acceptance bar is the mirror image of the scale-in oracle test in
//! `chaos_recovery.rs`: after a kill shrinks the world, admitting a fresh
//! rank back must leave a cluster that is **bit-exact** with a fresh
//! `N`-rank cluster restored from the post-join snapshots — zero degraded
//! iterations, and the joiner's fp32 Adam slices *transferred* from their
//! previous owners moments-and-all, never re-initialized. A join is a pure
//! re-partition of optimizer state: the concatenated global
//! `(master, m, v)` before and after the grow must match bit for bit.
//!
//! The physical cluster is `WORLD` ranks but only `ACTIVE` train from the
//! start (`MembershipView::partial`): the extra rank idles as a standby
//! until the driver pairs `MoeLayerEngine::admit` on every member with
//! `MoeLayerEngine::join` on the standby.

use std::sync::Arc;
use std::time::Duration;

use symi::{EngineConfig, EngineSnapshot, JoinStats, MoeLayerEngine};
use symi_collectives::coll::chunk_range;
use symi_collectives::{Cluster, ClusterSpec, FaultPlan, MsgMatch, RetryPolicy, WirePhase};
use symi_telemetry::ClusterTelemetry;
use symi_tensor::{AdamConfig, Matrix};

/// Physical cluster size (threads spawned).
const WORLD: usize = 5;
/// Ranks training from iteration 0; `WORLD - ACTIVE` standbys idle.
const ACTIVE: usize = 4;
/// The standby that joins mid-run.
const JOINER: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const T_LOC: usize = 8;
/// Boundary at which every member calls `admit` (and the standby `join`).
const JOIN_AT: u64 = 3;
const ITERS: u64 = 7;

fn cfg() -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 31,
        layer_id: 0,
    }
}

/// Mildly skewed token embeddings so the placement actually rebalances.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T_LOC, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T_LOC + r) * D + c) as f32 * 0.613).sin()
    })
}

fn param_count() -> usize {
    D * DFF + DFF + DFF * D + D
}

/// What one member of the grown world observed.
#[derive(Clone, Debug)]
struct Outcome {
    /// Snapshot taken right before `admit` — `None` on the joiner, which
    /// has no pre-join state by definition.
    pre: Option<EngineSnapshot>,
    stats: JoinStats,
    /// Snapshot taken right after the join landed (the oracle seed).
    post: EngineSnapshot,
    /// Losses of every iteration run by the grown world.
    post_losses: Vec<f32>,
}

/// Rebuilds the global per-class `(master, m, v)` state from a set of
/// snapshots by laying each rank's shard down at its recorded offset.
/// Asserts the shards tile the parameter space exactly.
fn global_state(snaps: &[&EngineSnapshot]) -> Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> {
    let p = param_count();
    let mut out = vec![(vec![f32::NAN; p], vec![f32::NAN; p], vec![f32::NAN; p]); E];
    for snap in snaps {
        for (class, shard) in snap.shards.iter().enumerate() {
            let (g_master, g_m, g_v) = &mut out[class];
            g_master[shard.offset..shard.offset + shard.len()].copy_from_slice(&shard.master);
            g_m[shard.offset..shard.offset + shard.len()].copy_from_slice(&shard.m);
            g_v[shard.offset..shard.offset + shard.len()].copy_from_slice(&shard.v);
        }
    }
    for (class, (g_master, g_m, g_v)) in out.iter().enumerate() {
        for buf in [g_master, g_m, g_v] {
            assert!(
                buf.iter().all(|x| !x.is_nan()),
                "class {class}: shards must tile the parameter space with no hole"
            );
        }
    }
    out
}

/// The grown-world tail every member runs after the join: train to the
/// budget, assert nothing degrades (a boundary join aborts nothing).
fn train_tail(
    ctx: &mut symi_collectives::RankCtx,
    engine: &mut MoeLayerEngine,
    x: &Matrix,
) -> Result<Vec<f32>, String> {
    let target = Matrix::zeros(T_LOC, D);
    let mut losses = Vec::new();
    while engine.iteration_count() < ITERS {
        let stats = engine.iteration(ctx, x, &target).map_err(|e| e.to_string())?;
        assert!(!stats.degraded, "post-join iterations must not degrade");
        losses.push(stats.loss);
    }
    Ok(losses)
}

/// Phase A of the oracle test: kill → shrink → admit → train out.
fn run_kill_then_join(
    telemetry: Arc<ClusterTelemetry>,
) -> Vec<Result<Result<Outcome, String>, String>> {
    // Rank 2 dies at its first dispatch event of iteration 1, exactly like
    // the scale-in chaos scenarios.
    let plan =
        FaultPlan::new(9).kill(2, MsgMatch::any().phase(WirePhase::DispatchRows).iteration(1));
    let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(WORLD), plan, move |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_millis(60)));
        ctx.set_retry_policy(Some(RetryPolicy::new(1, 2.0)));
        let target = Matrix::zeros(T_LOC, D);

        if ctx.rank() == JOINER {
            // The standby: blocks until the survivors bootstrap it. The
            // deadline is generous — it spans the survivors' pre-join
            // training *and* the kill-recovery stall.
            let (mut engine, stats) = MoeLayerEngine::join(ctx, cfg(), Duration::from_secs(30))
                .map_err(|e| e.to_string())?;
            engine.attach_telemetry(telemetry.handle(ctx.rank()));
            let post = engine.snapshot();
            let x = tokens(ctx.rank());
            let post_losses = train_tail(ctx, &mut engine, &x)?;
            return Ok(Outcome { pre: None, stats, post, post_losses });
        }

        // An initially-active rank: train, absorb the kill elastically,
        // then admit the standby at the JOIN_AT boundary.
        let mut engine = MoeLayerEngine::new_in_world(ctx.rank(), ACTIVE, WORLD, cfg());
        engine.attach_telemetry(telemetry.handle(ctx.rank()));
        let x = tokens(ctx.rank());
        while engine.iteration_count() < JOIN_AT {
            match engine.iteration(ctx, &x, &target) {
                Ok(_) => {}
                Err(e) if MoeLayerEngine::can_recover(&e) => {
                    engine.recover(ctx, &e).map_err(|e| e.to_string())?;
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        let pre = engine.snapshot();
        let stats = engine.admit(ctx, JOINER).map_err(|e| e.to_string())?;
        let post = engine.snapshot();
        let post_losses = train_tail(ctx, &mut engine, &x)?;
        Ok(Outcome { pre: Some(pre), stats, post, post_losses })
    });
    results
}

#[test]
fn kill_then_join_matches_a_fresh_oracle_with_transferred_moments() {
    let telemetry = ClusterTelemetry::new(WORLD);
    let results = run_kill_then_join(telemetry.clone());

    // Sort the grown world's members by post-join logical rank. Only the
    // killed rank may panic; everyone else must finish.
    let mut by_logical: Vec<Option<Outcome>> = vec![None; ACTIVE];
    let mut phys_of = vec![0usize; ACTIVE];
    for (phys, r) in results.into_iter().enumerate() {
        match r {
            Err(panic) if phys == 2 => {
                assert!(panic.contains("fault injection"), "rank 2 panic: {panic}");
            }
            Err(panic) => panic!("only the killed rank may panic, rank {phys} did: {panic}"),
            Ok(inner) => {
                let o = inner.unwrap_or_else(|e| panic!("rank {phys} errored: {e}"));
                let lrank = o.post.logical_rank;
                phys_of[lrank] = phys;
                by_logical[lrank] = Some(o);
            }
        }
    }
    let members: Vec<Outcome> =
        by_logical.into_iter().map(|o| o.expect("dense logical ranks")).collect();
    assert_eq!(phys_of, vec![0, 1, 3, JOINER], "survivors stay dense; the joiner appends");

    // Every member agreed on the same join: epoch 2 (kill bumped to 1),
    // back to the original ACTIVE-rank world, at the clean boundary.
    for (lrank, o) in members.iter().enumerate() {
        assert_eq!(o.stats.membership_epoch, 2, "logical {lrank}");
        assert_eq!(o.stats.world_size, ACTIVE, "logical {lrank}");
        assert_eq!(o.stats.joiner, JOINER, "logical {lrank}");
        assert_eq!(o.stats.resume_iteration, JOIN_AT, "logical {lrank}: boundary join");
        assert_eq!(
            o.stats.reshard.reinitialized_params, 0,
            "logical {lrank}: a join never re-initializes optimizer state"
        );
        assert_eq!(
            o.stats.reshard.reseeded_params, 0,
            "logical {lrank}: a join never re-seeds moments from masters"
        );
        assert_eq!(o.post.iteration, JOIN_AT, "logical {lrank}");
        assert_eq!(o.post.world_size, ACTIVE, "logical {lrank}");
        assert_eq!(
            o.post_losses.len(),
            (ITERS - JOIN_AT) as usize,
            "logical {lrank}: the grown world runs every remaining iteration"
        );
        assert!(o.post_losses.iter().all(|l| l.is_finite()), "logical {lrank}");
    }
    let joiner = members.last().expect("the joiner is the highest logical rank");
    assert!(
        joiner.stats.reshard.transferred_params > 0,
        "the joiner's Adam slices arrive over the wire"
    );
    assert_eq!(joiner.stats.reshard.kept_params, 0, "the joiner had nothing to keep");

    // The moment-transfer contract: a grow is a pure re-partition. The
    // global (master, m, v) reassembled from the survivors' *pre-admit*
    // shards must equal the one reassembled from all four *post-join*
    // shards, bit for bit — and the joiner's slice of it must be exactly
    // the uniform chunk of the grown geometry.
    let pre_snaps: Vec<&EngineSnapshot> = members.iter().filter_map(|o| o.pre.as_ref()).collect();
    assert_eq!(pre_snaps.len(), ACTIVE - 1, "three survivors exported pre-admit state");
    let post_snaps: Vec<&EngineSnapshot> = members.iter().map(|o| &o.post).collect();
    let pre_global = global_state(&pre_snaps);
    let post_global = global_state(&post_snaps);
    for class in 0..E {
        assert_eq!(
            pre_global[class], post_global[class],
            "class {class}: the grow must re-partition state without altering a bit"
        );
    }
    let (j_start, j_end) = chunk_range(param_count(), ACTIVE, ACTIVE - 1);
    for (class, shard) in joiner.post.shards.iter().enumerate() {
        assert_eq!(shard.offset, j_start, "class {class}: joiner owns the last uniform chunk");
        assert_eq!(shard.len(), j_end - j_start, "class {class}");
        let pre_t = pre_snaps[0].shards[class].t;
        assert_eq!(shard.t, pre_t, "class {class}: the Adam step count travels with the state");
    }
    // Live training state made it across the wire: some class's moments in
    // the joiner's slice are nonzero. (Per-class would be too strong — a
    // cold class that routed no tokens has legitimately zero moments.)
    assert!(
        joiner.post.shards.iter().any(|s| s.m.iter().any(|&x| x != 0.0))
            && joiner.post.shards.iter().any(|s| s.v.iter().any(|&x| x != 0.0)),
        "transferred moments are live training state, not a blanket re-init"
    );

    // Phase B: the oracle. A brand-new ACTIVE-rank cluster seeded from the
    // post-join snapshots, each logical rank feeding the token stream of
    // the physical rank it maps to. Bit-exact equality, not tolerance.
    let snaps = Arc::new(members.iter().map(|o| o.post.clone()).collect::<Vec<_>>());
    let phys = phys_of.clone();
    let (oracle, _) = Cluster::run(ClusterSpec::flat(ACTIVE), move |ctx| {
        let mut engine = MoeLayerEngine::from_snapshot(cfg(), snaps[ctx.rank()].clone());
        engine.materialize_slots(ctx).expect("oracle materialization is fault-free");
        let x = tokens(phys[ctx.rank()]);
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::new();
        while engine.iteration_count() < ITERS {
            losses.push(engine.iteration(ctx, &x, &target).expect("oracle is fault-free").loss);
        }
        losses
    });
    for (lrank, (member, oracle)) in members.iter().zip(&oracle).enumerate() {
        assert_eq!(
            &member.post_losses, oracle,
            "logical rank {lrank}: the grown cluster must be bit-exact vs the fresh oracle"
        );
    }

    // The join must land in the telemetry registry (the JSONL surface).
    let json = telemetry.registry().snapshot().to_string();
    for key in ["membership_epoch", "world_size", "transferred_params", "joins_total"] {
        assert!(json.contains(key), "telemetry snapshot must carry `{key}`: {json}");
    }
}

#[test]
fn healthy_grow_admits_the_standby_without_a_preceding_kill() {
    // No fault at all: 4 active ranks of a 5-rank physical cluster train
    // two iterations, then grow to 5. The join path must not depend on a
    // recovery having happened first (epoch 0 → 1 directly), and all five
    // members must agree bit-for-bit on every post-join loss.
    const GROW_AT: u64 = 2;
    let (results, _) = Cluster::run(ClusterSpec::flat(WORLD), |ctx| {
        let target = Matrix::zeros(T_LOC, D);
        if ctx.rank() == JOINER {
            let (mut engine, stats) =
                MoeLayerEngine::join(ctx, cfg(), Duration::from_secs(30)).expect("join succeeds");
            let x = tokens(ctx.rank());
            let post_losses = train_tail(ctx, &mut engine, &x).expect("joiner trains clean");
            assert_eq!(engine.membership().size(), WORLD);
            return (stats, post_losses, engine.degraded_iterations());
        }
        let mut engine = MoeLayerEngine::new_in_world(ctx.rank(), ACTIVE, WORLD, cfg());
        let x = tokens(ctx.rank());
        while engine.iteration_count() < GROW_AT {
            engine.iteration(ctx, &x, &target).expect("healthy pre-grow iteration");
        }
        let stats = engine.admit(ctx, JOINER).expect("admit succeeds");
        let post_losses = train_tail(ctx, &mut engine, &x).expect("survivor trains clean");
        assert_eq!(engine.membership().size(), WORLD);
        (stats, post_losses, engine.degraded_iterations())
    });

    let reference = &results[0].1;
    assert_eq!(reference.len(), (ITERS - GROW_AT) as usize);
    for (rank, (stats, losses, degraded)) in results.iter().enumerate() {
        assert_eq!(stats.membership_epoch, 1, "rank {rank}: a healthy grow is the first epoch");
        assert_eq!(stats.world_size, WORLD, "rank {rank}");
        assert_eq!(stats.joiner, JOINER, "rank {rank}");
        assert_eq!(stats.resume_iteration, GROW_AT, "rank {rank}: nothing is skipped");
        assert_eq!(stats.reshard.reinitialized_params, 0, "rank {rank}");
        assert_eq!(stats.reshard.reseeded_params, 0, "rank {rank}");
        assert_eq!(losses, reference, "rank {rank}: members agree on every loss");
        assert!(losses.iter().all(|l| l.is_finite()), "rank {rank}");
        assert_eq!(*degraded, 0, "rank {rank}: a boundary grow degrades nothing");
        if rank == JOINER {
            assert!(stats.reshard.transferred_params > 0, "joiner state arrives over the wire");
        }
    }
}
