//! Behavioural tests of the distributed engines under *skewed* load —
//! where the two systems genuinely differ.

use symi::{EngineConfig, MoeLayerEngine};
use symi_baselines::DeepSpeedMoeEngine;
use symi_collectives::{Cluster, ClusterSpec};
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;

/// Token embeddings engineered so the (seeded, shared) router sends most
/// tokens to few classes: all ranks draw from the same narrow distribution.
fn skewed_tokens(rank: usize, t_loc: usize) -> Matrix {
    Matrix::from_fn(t_loc, D, |r, c| {
        // Mostly one cluster in embedding space, with mild per-token noise.
        let base = (c as f32 * 0.7).sin();
        base + 0.05 * (((rank * t_loc + r) * D + c) as f32 * 0.613).sin()
    })
}

fn symi_cfg(slot_capacity: usize) -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity,
        adam: AdamConfig::default(),
        seed: 77,
        layer_id: 0,
    }
}

#[test]
fn symi_survives_more_tokens_under_skew() {
    let cap = 4usize; // tight: uniform replication cannot absorb the skew
    let (symi_stats, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut e = MoeLayerEngine::new(ctx.rank(), NODES, symi_cfg(cap));
        let x = skewed_tokens(ctx.rank(), 16);
        let target = Matrix::zeros(16, D);
        // Two iterations: the first observes popularity, the second runs
        // under the adapted placement.
        let _ = e.iteration(ctx, &x, &target).unwrap();
        e.iteration(ctx, &x, &target).unwrap()
    });
    let (ds_stats, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut e = DeepSpeedMoeEngine::new(
            ctx.rank(),
            NODES,
            D,
            DFF,
            E,
            S,
            cap,
            AdamConfig::default(),
            77,
        );
        let x = skewed_tokens(ctx.rank(), 16);
        let target = Matrix::zeros(16, D);
        let _ = e.iteration(ctx, &x, &target).unwrap();
        e.iteration(ctx, &x, &target).unwrap()
    });
    let symi = &symi_stats[0];
    let ds = &ds_stats[0];
    assert_eq!(symi.survived + symi.dropped, ds.survived + ds.dropped);
    assert!(
        symi.survived > ds.survived,
        "adaptive replication must survive more tokens: SYMI {} vs DeepSpeed {} (of {})",
        symi.survived,
        ds.survived,
        symi.survived + symi.dropped
    );
}

#[test]
fn symi_replication_tracks_the_hot_class() {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut e = MoeLayerEngine::new(ctx.rank(), NODES, symi_cfg(1_000_000));
        let x = skewed_tokens(ctx.rank(), 16);
        let target = Matrix::zeros(16, D);
        let stats = e.iteration(ctx, &x, &target).unwrap();
        // Land the (possibly still in-flight under SYMI_OVERLAP=on)
        // weight scatter so the rebalanced placement is observable.
        e.drain(ctx).unwrap();
        (stats.popularity, e.placement.replica_counts())
    });
    let (popularity, counts) = &results[0];
    let hot = (0..E).max_by_key(|&c| popularity[c]).expect("non-empty");
    let total_pop: u64 = popularity.iter().sum();
    let share = popularity[hot] as f64 / total_pop as f64;
    let slots: usize = counts.iter().sum();
    // Algorithm 1 keeps one replica per class, so the hot class can hold at
    // most slots − (E−1) replicas regardless of its popularity.
    let attainable = (slots - (E - 1)) as f64 / slots as f64;
    let target_share = share.min(attainable);
    let replica_share = counts[hot] as f64 / slots as f64;
    assert!(
        (target_share - replica_share).abs() < 0.15,
        "replica share {replica_share:.2} should track min(popularity {share:.2}, floor cap {attainable:.2})"
    );
}

#[test]
fn engine_handles_every_token_on_one_class() {
    // Degenerate skew: identical tokens → a single class gets everything.
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut e = MoeLayerEngine::new(ctx.rank(), NODES, symi_cfg(1_000_000));
        let x = Matrix::from_fn(8, D, |_, c| (c as f32 * 0.7).sin());
        let target = Matrix::zeros(8, D);
        let s1 = e.iteration(ctx, &x, &target).unwrap();
        let s2 = e.iteration(ctx, &x, &target).unwrap();
        e.drain(ctx).unwrap();
        (s1, s2, e.placement.replica_counts())
    });
    let (s1, _s2, counts) = &results[0];
    let hot = (0..E).max_by_key(|&c| s1.popularity[c]).unwrap();
    assert_eq!(s1.popularity[hot], (8 * NODES) as u64, "all tokens on one class");
    // The hot class absorbs all slots minus the one-replica floors.
    assert_eq!(counts[hot], NODES * S - (E - 1));
    assert!(counts.iter().all(|&c| c >= 1), "floor must hold");
}

#[test]
fn single_rank_cluster_works() {
    let (results, report) = Cluster::run(ClusterSpec::flat(1), |ctx| {
        let cfg = EngineConfig {
            d_model: D,
            d_ff: DFF,
            expert_classes: 2,
            slots_per_rank: 2,
            slot_capacity: 1_000_000,
            adam: AdamConfig::default(),
            seed: 5,
            layer_id: 0,
        };
        let mut e = MoeLayerEngine::new(ctx.rank(), 1, cfg);
        let x = Matrix::from_fn(8, D, |r, c| ((r * D + c) as f32 * 0.3).sin());
        let target = Matrix::zeros(8, D);
        let mut last = 0.0;
        for _ in 0..5 {
            last = e.iteration(ctx, &x, &target).unwrap().loss;
        }
        last
    });
    assert!(results[0].is_finite());
    assert_eq!(report.inter_node_bytes, 0, "one rank must never touch the network");
}

#[test]
fn iteration_is_deterministic_across_runs() {
    let run = || {
        let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
            let mut e = MoeLayerEngine::new(ctx.rank(), NODES, symi_cfg(8));
            let x = skewed_tokens(ctx.rank(), 8);
            let target = Matrix::zeros(8, D);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(e.iteration(ctx, &x, &target).unwrap().loss);
            }
            losses
        });
        results[0].clone()
    };
    assert_eq!(run(), run(), "the whole distributed pipeline must be deterministic");
}

#[test]
fn two_layer_engines_share_ranks_without_cross_talk() {
    // A real model runs one engine per MoE layer over the same ranks; the
    // layer_id tag salt must keep their collectives isolated. Interleaved
    // execution must produce exactly the results of each engine run alone.
    let run_interleaved = || {
        let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
            let mut l0 = MoeLayerEngine::new(
                ctx.rank(),
                NODES,
                EngineConfig { layer_id: 0, ..symi_cfg(1_000_000) },
            );
            let mut l1 = MoeLayerEngine::new(
                ctx.rank(),
                NODES,
                EngineConfig { layer_id: 1, seed: 99, ..symi_cfg(1_000_000) },
            );
            let x0 = skewed_tokens(ctx.rank(), 8);
            let x1 = skewed_tokens(ctx.rank() + 7, 8);
            let target = Matrix::zeros(8, D);
            let mut out = Vec::new();
            for _ in 0..3 {
                out.push(l0.iteration(ctx, &x0, &target).unwrap().loss);
                out.push(l1.iteration(ctx, &x1, &target).unwrap().loss);
            }
            out
        });
        results[0].clone()
    };
    let run_alone = |layer_id: usize, seed: u64, shift: usize| {
        let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
            let mut e = MoeLayerEngine::new(
                ctx.rank(),
                NODES,
                EngineConfig { layer_id, seed, ..symi_cfg(1_000_000) },
            );
            let x = skewed_tokens(ctx.rank() + shift, 8);
            let target = Matrix::zeros(8, D);
            (0..3).map(|_| e.iteration(ctx, &x, &target).unwrap().loss).collect::<Vec<_>>()
        });
        results[0].clone()
    };
    let interleaved = run_interleaved();
    let alone0 = run_alone(0, 77, 0);
    let alone1 = run_alone(1, 99, 7);
    assert_eq!(
        interleaved,
        vec![alone0[0], alone1[0], alone0[1], alone1[1], alone0[2], alone1[2]],
        "interleaving engines must not change either engine's math"
    );
}
