//! The reproduction's strongest correctness check: with generous capacity
//! (no token drops) the SYMI engine and the DeepSpeed engine perform the
//! *same mathematics* — identical routing, identical per-class gradient
//! sums, identical Adam updates — while moving bytes along completely
//! different paths (decoupled uniform shards + per-iteration re-placement
//! vs coupled EDP shards + static striping). Their losses and expert
//! weights must therefore agree to floating-point reassociation tolerance.

use symi::{EngineConfig, MoeLayerEngine};
use symi_baselines::DeepSpeedMoeEngine;
use symi_collectives::{Cluster, ClusterSpec};
use symi_integration::token_matrix;
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 8;
const DFF: usize = 16;
const E: usize = 4;
const S: usize = 2;
const SEED: u64 = 31;
const T_LOC: usize = 8;

fn symi_run(iters: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let cfg = EngineConfig {
            d_model: D,
            d_ff: DFF,
            expert_classes: E,
            slots_per_rank: S,
            slot_capacity: 1_000_000,
            adam: AdamConfig::default(),
            seed: SEED,
            layer_id: 0,
        };
        let mut engine = MoeLayerEngine::new(ctx.rank(), NODES, cfg);
        let x = token_matrix(ctx.rank(), T_LOC, D);
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::new();
        for _ in 0..iters {
            losses.push(engine.iteration(ctx, &x, &target).unwrap().loss);
        }
        // Land the last iteration's weight scatter (in flight under
        // SYMI_OVERLAP=on) so the final placement and weights are current.
        engine.drain(ctx).unwrap();
        // Gather one representative weight vector per class from the final
        // placement (any replica — the engine guarantees they are equal).
        let mut class_weights: Vec<Option<Vec<f32>>> = vec![None; E];
        for local in 0..S {
            let slot = ctx.rank() * S + local;
            let class = engine.placement.class_of_slot(slot);
            class_weights[class].get_or_insert_with(|| engine.slot_weights(local));
        }
        (losses, class_weights)
    });
    merge(results)
}

fn deepspeed_run(iters: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
        let mut engine = DeepSpeedMoeEngine::new(
            ctx.rank(),
            NODES,
            D,
            DFF,
            E,
            S,
            1_000_000,
            AdamConfig::default(),
            SEED,
        );
        let x = token_matrix(ctx.rank(), T_LOC, D);
        let target = Matrix::zeros(T_LOC, D);
        let mut losses = Vec::new();
        for _ in 0..iters {
            losses.push(engine.iteration(ctx, &x, &target).unwrap().loss);
        }
        let mut class_weights: Vec<Option<Vec<f32>>> = vec![None; E];
        for (class, local) in engine.placement().classes_on_rank(ctx.rank()) {
            class_weights[class].get_or_insert_with(|| engine.slot_weights(local));
        }
        (losses, class_weights)
    });
    merge(results)
}

/// Per-rank observation: iteration losses plus each class's flat weights
/// (present only on ranks hosting a replica).
type RankView = (Vec<f32>, Vec<Option<Vec<f32>>>);

/// Merges per-rank views into one canonical view, asserting cross-rank
/// consistency on the way.
fn merge(results: Vec<RankView>) -> (Vec<f32>, Vec<Vec<f32>>) {
    let losses = results[0].0.clone();
    for (l, _) in &results {
        assert_eq!(l, &losses, "ranks disagree on losses");
    }
    let mut classes = vec![None; results[0].1.len()];
    for (_, per_rank) in &results {
        for (class, w) in per_rank.iter().enumerate() {
            if let Some(w) = w {
                match &classes[class] {
                    None => classes[class] = Some(w.clone()),
                    Some(reference) => assert_eq!(reference, w, "class {class} replicas diverged"),
                }
            }
        }
    }
    (losses, classes.into_iter().map(|c| c.expect("every class placed")).collect())
}

#[test]
fn symi_and_deepspeed_engines_compute_the_same_training_math() {
    let iters = 5;
    let (symi_losses, symi_weights) = symi_run(iters);
    let (ds_losses, ds_weights) = deepspeed_run(iters);

    for (t, (a, b)) in symi_losses.iter().zip(&ds_losses).enumerate() {
        assert!(
            (a - b).abs() < 1e-5 * (1.0 + a.abs()),
            "iteration {t}: SYMI loss {a} vs DeepSpeed loss {b}"
        );
    }
    for (class, (a, b)) in symi_weights.iter().zip(&ds_weights).enumerate() {
        let diff = symi_integration::max_abs_diff(a, b);
        assert!(diff < 5e-4, "class {class}: weight divergence {diff} between the two systems");
    }
}

#[test]
fn traffic_volumes_are_comparable_between_systems() {
    // §3.3-II: per-iteration data volume is the same order for both
    // designs (exactly equal in the analytic model; here the SYMI engine's
    // uniform sharding adds only the locality delta of §3.3-III).
    let run_traffic = |symi: bool| {
        let (_, report) = Cluster::run(ClusterSpec::flat(NODES), |ctx| {
            let x = token_matrix(ctx.rank(), T_LOC, D);
            let target = Matrix::zeros(T_LOC, D);
            if symi {
                let cfg = EngineConfig {
                    d_model: D,
                    d_ff: DFF,
                    expert_classes: E,
                    slots_per_rank: S,
                    slot_capacity: 1_000_000,
                    adam: AdamConfig::default(),
                    seed: SEED,
                    layer_id: 0,
                };
                let mut e = MoeLayerEngine::new(ctx.rank(), NODES, cfg);
                for _ in 0..3 {
                    let _ = e.iteration(ctx, &x, &target).unwrap();
                }
            } else {
                let mut e = DeepSpeedMoeEngine::new(
                    ctx.rank(),
                    NODES,
                    D,
                    DFF,
                    E,
                    S,
                    1_000_000,
                    AdamConfig::default(),
                    SEED,
                );
                for _ in 0..3 {
                    let _ = e.iteration(ctx, &x, &target).unwrap();
                }
            }
        });
        report.total_bytes()
    };
    let symi_bytes = run_traffic(true);
    let ds_bytes = run_traffic(false);
    let ratio = symi_bytes as f64 / ds_bytes as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "adaptive per-iteration rebalancing must not blow up traffic: SYMI {symi_bytes} vs DeepSpeed {ds_bytes}"
    );
}
